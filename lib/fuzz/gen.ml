(* Seeded random scenario generation.

   The interesting part is staying inside the paper's model while still
   covering its corners: any f < n/3 Byzantine cast with any strategy mix is
   fair game forever, but network faults and crashes of *correct* nodes are
   transient — each gets a paired Recover/Heal, and the horizon leaves
   Delta_stb after the last disruption so the oracle judges the run after
   re-stabilization, exactly how the paper states its guarantees. *)

open Ssba_core.Types
module Rng = Ssba_sim.Rng
module P = Ssba_core.Params
module S = Ssba_harness.Scenario
module C = Ssba_adversary.Catalog
module Ch = Ssba_harness.Chaos
module T = Ssba_transport.Transport
module W = Ssba_service.Workload

type config = {
  min_n : int;
  max_n : int;
  max_cast : int;
  max_proposals : int;
  max_disruptions : int;
  values : value list;
  disruptions : bool;
  transport : T.config option;
  max_link_faults : int;
  chaos : bool;
  r_slack : P.r_slack;  (* block R gate variant for every generated spec *)
  edge_delays : bool;
      (* boundary sampling: admit the Edge delay model and the Gate_edge
         catalog entry into the draw menus. Off reproduces the historical
         RNG draw sequence bit-for-bit (the legacy corpus digests). *)
  service : bool;
      (* overload tier: stamp every spec with a generated service workload
         (open-loop arrivals + bursts, watermarks, bounded retry queue).
         The extra draws happen only when set, so the other tiers' RNG
         streams — and their pinned corpus digests — are untouched. *)
}

let default_config =
  {
    min_n = 4;
    max_n = 10;
    max_cast = 3;
    max_proposals = 3;
    max_disruptions = 2;
    values = [ "alpha"; "beta"; "gamma" ];
    disruptions = true;
    transport = None;
    max_link_faults = 0;
    chaos = false;
    r_slack = P.default_r_slack;
    edge_delays = true;
    service = false;
  }

(* The lossy campaign: every spec runs the transport over links with
   persistent loss (p up to 0.3), duplication and reordering. Transient
   disruptions are off so the only faults are the ones the transport claims
   to mask — which keeps every generated spec in the oracle's "reliable"
   class, i.e. Validity/Termination/Timeliness are checked on all of them.
   rto = 3 delta covers a send plus its ack plus processing slack. *)
let lossy_config =
  let delta = (P.default 4).P.delta in
  {
    default_config with
    disruptions = false;
    transport = Some (T.config ~rto:(3.0 *. delta) ());
    max_link_faults = 3;
  }

(* The churn tier: every spec is a continuous-churn schedule — repeated
   disruptions, each followed by an in-window recovery probe and a
   post-[Delta_stb] entitled probe. Episodes are [Delta_stb]-long, so keep
   the clusters small. *)
let chaos_config = { default_config with max_n = 7; max_cast = 2; chaos = true }

(* The overload tier: every spec runs the recurrent-agreement service under
   open-loop load with arrival bursts, over a transport with persistent link
   faults (masked, so the agreement guarantees stay checkable), plus at most
   one transient churn group. No scheduled proposals — all agreement traffic
   comes from the service driver, judged by the value-based service oracle
   plus the queue/shed/drain trace checks. *)
let overload_config =
  let delta = (P.default 4).P.delta in
  {
    default_config with
    max_n = 7;
    max_cast = 2;
    max_proposals = 0;
    max_disruptions = 1;
    (* The service runs tens of concurrent sessions; a burst floods a link
       with far more than the default 64 unacked frames before any ack
       clears a slot, and a ring overrun silently abandons the overwritten
       frame's reliability — one lost transmission then stalls that node's
       IA forever. Provision the pending/dedup rings for that concurrency. *)
    transport = Some (T.config ~rto:(3.0 *. delta) ~window:1024 ~dedup:2048 ());
    max_link_faults = 2;
    service = true;
  }

let last_activity spec =
  let times =
    List.map Spec.event_time spec.Spec.events
    @ List.map (fun (p : S.proposal) -> p.S.at) spec.Spec.proposals
    @ List.concat_map (fun (_, c) -> C.activity_times c) spec.Spec.cast
  in
  List.fold_left max 0.0 times

let min_horizon spec =
  let params = Spec.params spec in
  let tail =
    (* Only disruptions need the stabilization allowance; transport-masked
       link faults don't suspend the guarantees (and their inflated
       [delta_stb] would balloon the horizon for nothing). *)
    if List.exists (Spec.disruptive spec) spec.Spec.events then
      params.P.delta_stb
    else 0.0
  in
  let service_tail =
    (* A service spec must drain after arrivals stop: the worst retry chain
       (generated budgets cap at 4 attempts over ~[Delta_0]-scaled backoff)
       plus session GC fits comfortably inside 1.5 [Delta_stb] — the slack
       that makes the oracle's eventual-drain check provable. *)
    match spec.Spec.service with
    | None -> 0.0
    | Some w -> w.W.stop_at +. (1.5 *. params.P.delta_stb)
  in
  Float.max (last_activity spec +. tail) service_tail
  +. params.P.delta_agr +. (10.0 *. params.P.d)

let spec rng cfg =
  let n = Rng.int_in_range rng ~lo:(max 4 cfg.min_n) ~hi:(max 4 cfg.max_n) in
  let f = P.max_faults n in
  let params = P.default n in
  (* Active window: everything the cast, proposals and events do happens in
     [0, active]; its width scales with how much is scheduled. *)
  let active = 3.0 *. params.P.delta_agr in
  (* Byzantine cast. *)
  let n_byz = Rng.int rng (min f cfg.max_cast + 1) in
  let byz_ids =
    Array.to_list (Rng.subset rng ~k:n_byz (Array.init n Fun.id))
    |> List.sort compare
  in
  let cast =
    List.map
      (fun id ->
        ( id,
          C.generate ~edges:cfg.edge_delays rng ~values:cfg.values ~at_lo:0.01
            ~at_hi:active ~n ))
      byz_ids
  in
  (* Boundary atoms for the Edge delay model: for each comparison boundary
     [b*d] (the 3d skew deadline, the 4d and 5d block-R gates), a legal
     per-hop delay that divides it exactly — so a chain of hops can land on
     the boundary to the last float bit — plus the interior extremes. *)
  let edge_atoms () =
    let boundary b =
      let target = b *. params.P.d in
      target /. Float.of_int (int_of_float (Float.ceil (target /. params.P.delta)))
    in
    Spec.Edge
      {
        atoms =
          [
            0.05 *. params.P.delta;
            boundary 3.0;
            boundary 4.0;
            boundary 5.0;
            params.P.delta;
          ];
      }
  in
  let correct = List.filter (fun id -> not (List.mem id byz_ids)) (List.init n Fun.id) in
  if cfg.chaos then begin
    (* Churn tier: the whole proposal/event schedule comes from one chaos
       pattern — deterministic given the pattern, so the only draws past this
       point are the pattern choice and the shared delay/clock/seed draws. *)
    let pattern =
      List.nth Ch.all_patterns (Rng.int rng (List.length Ch.all_patterns))
    in
    let sched =
      Ch.schedule ~episodes:2 pattern ~params ~correct ~byzantine:byz_ids
    in
    let seed = Rng.bits rng land 0x3FFFFFFF in
    let draft =
      {
        Spec.name =
          Printf.sprintf "chaos-%s-n%d-%d" (Ch.pattern_name pattern) n
            (seed land 0xFFFFFF);
        seed;
        n;
        f;
        delay =
          (* Half the churn specs run on boundary atoms so recovery windows
             get probed at the comparison edges too; the extra draw only
             happens when [edge_delays] is on, keeping the legacy stream. *)
          (if cfg.edge_delays && Rng.bool rng then edge_atoms ()
           else Spec.Uniform { lo = 0.05 *. params.P.delta; hi = params.P.delta });
        clocks =
          (if Rng.bool rng then S.Perfect
           else S.Drifting { rho = params.P.rho; max_offset = 0.1 });
        cast;
        proposals = sched.Ch.proposals;
        events = sched.Ch.events;
        transport = cfg.transport;
        horizon = 0.0;
        session_capacity = None;
        blackout = true;
        r_slack = cfg.r_slack;
        service = None;
      }
    in
    { draft with Spec.horizon = Float.max sched.Ch.horizon (min_horizon draft) }
  end
  else begin
  (* Proposals: distinct correct Generals (so the IG initiation-spacing rules
     never refuse on our account), spread over the active window. *)
  let n_props = Rng.int rng (cfg.max_proposals + 1) in
  let generals =
    Array.to_list
      (Rng.subset rng
         ~k:(min n_props (List.length correct))
         (Array.of_list correct))
  in
  let proposals =
    List.mapi
      (fun i g ->
        {
          S.g;
          v = Printf.sprintf "%s-%d" (Rng.pick_list rng cfg.values) i;
          at = Rng.float_in_range rng ~lo:0.01 ~hi:active;
        })
      generals
  in
  (* Environment events: each disruption is a paired fault/recovery window
     inside the active period. *)
  let events = ref [] in
  if cfg.disruptions && cfg.max_disruptions > 0 then begin
    let n_disruptions = Rng.int rng (cfg.max_disruptions + 1) in
    for _ = 1 to n_disruptions do
      let at = Rng.float_in_range rng ~lo:0.01 ~hi:(0.8 *. active) in
      let until =
        Rng.float_in_range rng ~lo:at ~hi:(min active (at +. (0.5 *. active)))
      in
      match Rng.int rng 4 with
      | 0 ->
          let node = Rng.int rng n in
          events :=
            S.Recover { node; at = until } :: S.Crash { node; at } :: !events
      | 1 ->
          let p = Rng.float_in_range rng ~lo:0.05 ~hi:0.6 in
          events := S.Heal { at = until } :: S.Drop_prob { at; p } :: !events
      | 2 ->
          let shuffled = Rng.shuffle rng (Array.init n Fun.id) in
          let k = Rng.int_in_range rng ~lo:1 ~hi:(n - 1) in
          let ga = Array.to_list (Array.sub shuffled 0 k) in
          let gb = Array.to_list (Array.sub shuffled k (n - k)) in
          events :=
            S.Heal { at = until }
            :: S.Partition { at; blocked = (List.sort compare ga, List.sort compare gb) }
            :: !events
      | _ ->
          events :=
            S.Scramble
              { at; values = cfg.values; net_garbage = Rng.int rng 150 }
            :: !events
    done
  end;
  (* Persistent link faults, only meaningful under a transport: they start
     early in the active window and never heal, so most of the run — the
     agreements included — happens over the degraded link. *)
  if cfg.max_link_faults > 0 && cfg.transport <> None then begin
    let n_faults = Rng.int_in_range rng ~lo:1 ~hi:cfg.max_link_faults in
    for _ = 1 to n_faults do
      let at = Rng.float_in_range rng ~lo:0.01 ~hi:(0.5 *. active) in
      let p () = Rng.float_in_range rng ~lo:0.05 ~hi:0.3 in
      match Rng.int rng 3 with
      | 0 -> events := S.Loss { at; p = p () } :: !events
      | 1 -> events := S.Duplicate { at; p = p () } :: !events
      | _ ->
          events :=
            S.Reorder
              {
                at;
                prob = p ();
                extra =
                  Rng.float_in_range rng ~lo:params.P.delta
                    ~hi:(5.0 *. params.P.delta);
              }
            :: !events
    done
  end;
  let events =
    List.stable_sort (fun a b -> compare (Spec.event_time a) (Spec.event_time b)) !events
  in
  (* 30 bits: exactly representable as a JSON double, so the replay file
     round-trips the seed bit-for-bit. *)
  let seed = Rng.bits rng land 0x3FFFFFFF in
  let draft =
    {
      Spec.name = Printf.sprintf "fuzz-n%d-%d" n (seed land 0xFFFFFF);
      seed;
      n;
      f;
      delay =
        (* With [edge_delays] the menu grows the boundary-sampling model as a
           4th equally-likely entry; without it the 3-way draw is the
           historical one, bit-for-bit. *)
        (match (if cfg.edge_delays then Rng.int rng 4 else Rng.int rng 3) with
        | 0 -> Spec.Fixed (Rng.float_in_range rng ~lo:(0.05 *. params.P.delta) ~hi:params.P.delta)
        | 1 ->
            let lo = Rng.float_in_range rng ~lo:(0.05 *. params.P.delta) ~hi:(0.5 *. params.P.delta) in
            Spec.Uniform { lo; hi = Rng.float_in_range rng ~lo ~hi:params.P.delta }
        | 2 ->
            Spec.Bimodal
              {
                fast = Rng.float_in_range rng ~lo:(0.05 *. params.P.delta) ~hi:(0.3 *. params.P.delta);
                slow = params.P.delta;
                slow_prob = Rng.float_in_range rng ~lo:0.01 ~hi:0.3;
              }
        | _ -> edge_atoms ());
      clocks =
        (if Rng.bool rng then S.Perfect
         else
           S.Drifting
             {
               rho = Rng.float_in_range rng ~lo:0.0 ~hi:params.P.rho;
               max_offset = Rng.float_in_range rng ~lo:0.0 ~hi:0.2;
             });
      cast;
      proposals;
      events;
      transport = cfg.transport;
      horizon = 0.0;
      session_capacity = None;
      blackout = true;
      r_slack = cfg.r_slack;
      service = None;
    }
  in
  (* Overload tier: stamp a service workload. Times are drawn in units of
     the spec's *effective* constants (the transport inflates d), so arrival
     pressure and drain slack scale with the drawn link faults. *)
  let draft =
    if not cfg.service then draft
    else begin
      let p = Spec.params draft in
      let channels = Rng.int_in_range rng ~lo:4 ~hi:8 in
      let capacity = max 8 (n * channels) in
      (* Sessions linger ~40d (decision + GC grace), so [live ~= rate * 40d];
         drawing the rate as a fraction of capacity/40d sweeps the service
         from comfortable to well past the high watermark. *)
      let lifetime = 40.0 *. p.P.d in
      let rate =
        Rng.float_in_range rng ~lo:0.5 ~hi:1.5 *. float_of_int capacity /. lifetime
      in
      let arrivals =
        if Rng.bool rng then W.Poisson { rate }
        else
          W.Bursty
            {
              rate;
              burst = Rng.int_in_range rng ~lo:(capacity / 2) ~hi:capacity;
              every =
                Rng.float_in_range rng ~lo:(1.5 *. p.P.delta_agr)
                  ~hi:(3.0 *. p.P.delta_agr);
            }
      in
      let start_at = 0.01 in
      let stop_at =
        start_at
        +. Rng.float_in_range rng ~lo:(4.0 *. p.P.delta_agr)
             ~hi:(8.0 *. p.P.delta_agr)
      in
      let high = Rng.float_in_range rng ~lo:0.6 ~hi:0.9 in
      let w =
        {
          W.arrivals;
          start_at;
          stop_at;
          channels;
          queue_cap = Rng.int_in_range rng ~lo:4 ~hi:32;
          high_watermark = high;
          low_watermark = Rng.float_in_range rng ~lo:0.3 ~hi:(Float.min 0.5 high);
          retry_max = Rng.int_in_range rng ~lo:2 ~hi:4;
          retry_base =
            Rng.float_in_range rng ~lo:p.P.delta_0 ~hi:(1.5 *. p.P.delta_0);
          pulse_cycles = 0;
        }
      in
      {
        draft with
        Spec.name = Printf.sprintf "overload-n%d-%d" n (draft.Spec.seed land 0xFFFFFF);
        service = Some w;
      }
    end
  in
  { draft with Spec.horizon = min_horizon draft }
  end
