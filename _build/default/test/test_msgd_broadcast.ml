(* Unit tests for the msgd-broadcast primitive (paper Figure 3), driven
   through a fake context. n = 7, f = 2: strong quorum 5, weak quorum 3. *)

open Helpers
open Ssba_core
module Mb = Msgd_broadcast

let params = Params.default 7
let d = params.Params.d
let phi = params.Params.phi

type h = {
  fake : Fake.t;
  mb : Mb.t;
  accepts : (int * Types.value * int) list ref;  (* (p, v, k) *)
}

let mk ?(self = 0) ?(anchor = `Now) () =
  let fake, ctx = Fake.make ~self params in
  let mb = Mb.create ~ctx ~g:6 in
  let accepts = ref [] in
  Mb.set_on_accept mb (fun ~p ~v ~k -> accepts := (p, v, k) :: !accepts);
  (match anchor with
  | `Now -> Mb.set_anchor mb fake.Fake.now
  | `None -> ());
  { fake; mb; accepts }

let msg h ~sender kind ~p ~v ~k = Mb.handle_message h.mb ~sender ~kind ~p ~v ~k

let test_init_triggers_echo () =
  let h = mk () in
  msg h ~sender:3 Types.Init ~p:3 ~v:"m" ~k:1;
  check_int "echo sent on init from p" 1 (Fake.count_kind h.fake "echo")

let test_init_authenticated () =
  let h = mk () in
  (* an init claiming broadcaster 3 but sent by 4 must be ignored *)
  msg h ~sender:4 Types.Init ~p:3 ~v:"m" ~k:1;
  check_int "forged init ignored" 0 (Fake.count_kind h.fake "echo")

let test_echo_quorums () =
  let h = mk () in
  List.iter (fun s -> msg h ~sender:s Types.Echo ~p:3 ~v:"m" ~k:1) [ 1; 2 ];
  check_int "2 < n-2f: no init'" 0 (Fake.count_kind h.fake "init'");
  msg h ~sender:3 Types.Echo ~p:3 ~v:"m" ~k:1;
  check_int "3 = n-2f echoes: init' sent" 1 (Fake.count_kind h.fake "init'");
  check_bool "no accept yet" true (!(h.accepts) = []);
  List.iter (fun s -> msg h ~sender:s Types.Echo ~p:3 ~v:"m" ~k:1) [ 4; 5 ];
  check_bool "n-f echoes: accepted via X" true (!(h.accepts) = [ (3, "m", 1) ])

let test_init2_detection_and_echo2 () =
  let h = mk () in
  List.iter (fun s -> msg h ~sender:s Types.Init2 ~p:3 ~v:"m" ~k:1) [ 1; 2; 3 ];
  check_bool "n-2f init': broadcaster detected" true (Mb.broadcasters h.mb = [ 3 ]);
  check_int "3 < n-f: no echo'" 0 (Fake.count_kind h.fake "echo'");
  List.iter (fun s -> msg h ~sender:s Types.Init2 ~p:3 ~v:"m" ~k:1) [ 4; 5 ];
  check_int "n-f init': echo' sent" 1 (Fake.count_kind h.fake "echo'")

let test_echo2_relay_and_accept () =
  let h = mk () in
  List.iter (fun s -> msg h ~sender:s Types.Echo2 ~p:3 ~v:"m" ~k:1) [ 1; 2; 3 ];
  check_int "n-2f echo': relayed" 1 (Fake.count_kind h.fake "echo'");
  check_bool "not accepted yet" true (!(h.accepts) = []);
  List.iter (fun s -> msg h ~sender:s Types.Echo2 ~p:3 ~v:"m" ~k:1) [ 4; 5 ];
  check_bool "n-f echo': accepted via Z" true (!(h.accepts) = [ (3, "m", 1) ])

let test_accept_once () =
  let h = mk () in
  List.iter (fun s -> msg h ~sender:s Types.Echo ~p:3 ~v:"m" ~k:1) [ 1; 2; 3; 4; 5 ];
  List.iter (fun s -> msg h ~sender:s Types.Echo2 ~p:3 ~v:"m" ~k:1) [ 1; 2; 3; 4; 5 ];
  check_int "accepted exactly once" 1 (List.length !(h.accepts))

let test_deadline_w () =
  let h = mk () in
  (* W deadline for k = 1 is tau_g + 2 Phi; a later init gets no echo *)
  Fake.advance h.fake ((2.0 *. phi) +. d);
  msg h ~sender:3 Types.Init ~p:3 ~v:"m" ~k:1;
  check_int "late init not echoed" 0 (Fake.count_kind h.fake "echo")

let test_deadline_x () =
  let h = mk () in
  Fake.advance h.fake ((3.0 *. phi) +. d);
  (* X deadline for k = 1 is tau_g + 3 Phi *)
  List.iter (fun s -> msg h ~sender:s Types.Echo ~p:3 ~v:"m" ~k:1) [ 1; 2; 3; 4; 5 ];
  check_int "late echoes: no init'" 0 (Fake.count_kind h.fake "init'");
  check_bool "late echoes: no X accept" true (!(h.accepts) = [])

let test_z_untimed () =
  let h = mk () in
  (* block Z has no deadline: echo' quorums accept arbitrarily late *)
  Fake.advance h.fake (10.0 *. phi);
  List.iter (fun s -> msg h ~sender:s Types.Echo2 ~p:3 ~v:"m" ~k:1) [ 1; 2; 3; 4; 5 ];
  check_bool "Z accepts late" true (!(h.accepts) = [ (3, "m", 1) ])

let test_higher_round_deadlines_scale () =
  let h = mk () in
  (* k = 2's W deadline is tau_g + 4 Phi: an init at 3 Phi still echoes *)
  Fake.advance h.fake (3.0 *. phi);
  msg h ~sender:3 Types.Init ~p:3 ~v:"m" ~k:2;
  check_int "k=2 init within deadline echoed" 1 (Fake.count_kind h.fake "echo")

let test_no_anchor_no_action () =
  let h = mk ~anchor:`None () in
  List.iter (fun s -> msg h ~sender:s Types.Echo ~p:3 ~v:"m" ~k:1) [ 1; 2; 3; 4; 5 ];
  check_int "no sends before the anchor is known" 0 (List.length h.fake.Fake.sent);
  check_bool "no accepts either" true (!(h.accepts) = []);
  (* once the anchor appears, logged messages are replayed *)
  Mb.set_anchor h.mb h.fake.Fake.now;
  check_bool "accept after anchoring" true (!(h.accepts) = [ (3, "m", 1) ]);
  check_int "init' sent after anchoring" 1 (Fake.count_kind h.fake "init'")

let test_rounds_out_of_range_dropped () =
  let h = mk () in
  msg h ~sender:3 Types.Init ~p:3 ~v:"m" ~k:0;
  msg h ~sender:3 Types.Init ~p:3 ~v:"m" ~k:(params.Params.f + 2);
  msg h ~sender:3 Types.Init ~p:3 ~v:"m" ~k:(-1);
  check_int "no echo for out-of-range rounds" 0 (Fake.count_kind h.fake "echo")

let test_triplets_independent () =
  let h = mk () in
  (* echoes for (3, m, 1) must not help (3, m', 1) or (4, m, 1) *)
  List.iter (fun s -> msg h ~sender:s Types.Echo ~p:3 ~v:"m" ~k:1) [ 1; 2; 3; 4 ];
  msg h ~sender:5 Types.Echo ~p:3 ~v:"m'" ~k:1;
  msg h ~sender:5 Types.Echo ~p:4 ~v:"m" ~k:1;
  check_bool "no accept from mixed triplets" true (!(h.accepts) = []);
  msg h ~sender:5 Types.Echo ~p:3 ~v:"m" ~k:1;
  check_bool "exact triplet completes" true (!(h.accepts) = [ (3, "m", 1) ])

let test_broadcast_sends_init () =
  let h = mk () in
  Mb.broadcast h.mb ~v:"mine" ~k:2;
  check_int "init sent" 1 (Fake.count_kind h.fake "init")

let test_cleanup_decay () =
  let h = mk () in
  List.iter (fun s -> msg h ~sender:s Types.Echo2 ~p:3 ~v:"m" ~k:1) [ 1; 2 ];
  Fake.advance h.fake (float_of_int ((2 * params.Params.f) + 3) *. phi +. d);
  Mb.cleanup h.mb;
  (* stale echo' must not combine with fresh ones *)
  List.iter (fun s -> msg h ~sender:s Types.Echo2 ~p:3 ~v:"m" ~k:1) [ 3; 4; 5 ];
  check_bool "no accept across the decay horizon" true (!(h.accepts) = [])

let test_cleanup_drops_future_anchor () =
  let h = mk ~anchor:`None () in
  Mb.set_anchor h.mb (h.fake.Fake.now +. 50.0);
  Mb.cleanup h.mb;
  check_bool "future anchor dropped" true (Mb.anchor h.mb = None)

let test_reset () =
  let h = mk () in
  List.iter (fun s -> msg h ~sender:s Types.Init2 ~p:3 ~v:"m" ~k:1) [ 1; 2; 3 ];
  check_int "broadcaster present" 1 (Mb.broadcaster_count h.mb);
  Mb.reset h.mb;
  check_int "broadcasters cleared" 0 (Mb.broadcaster_count h.mb);
  check_bool "anchor cleared" true (Mb.anchor h.mb = None)

let test_duplicate_senders () =
  let h = mk () in
  for _ = 1 to 10 do
    msg h ~sender:1 Types.Echo ~p:3 ~v:"m" ~k:1
  done;
  check_int "one sender is not a quorum" 0 (Fake.count_kind h.fake "init'")

let suite =
  [
    case "init triggers echo (W)" test_init_triggers_echo;
    case "init authenticated" test_init_authenticated;
    case "echo quorums (X)" test_echo_quorums;
    case "init' detection + echo' (Y)" test_init2_detection_and_echo2;
    case "echo' relay + accept (Z)" test_echo2_relay_and_accept;
    case "accept once" test_accept_once;
    case "W deadline" test_deadline_w;
    case "X deadline" test_deadline_x;
    case "Z untimed" test_z_untimed;
    case "round deadlines scale with k" test_higher_round_deadlines_scale;
    case "no anchor, no action" test_no_anchor_no_action;
    case "rounds out of range" test_rounds_out_of_range_dropped;
    case "triplets independent" test_triplets_independent;
    case "broadcast sends init (V)" test_broadcast_sends_init;
    case "cleanup decay" test_cleanup_decay;
    case "cleanup drops future anchor" test_cleanup_drops_future_anchor;
    case "reset" test_reset;
    case "duplicate senders" test_duplicate_senders;
  ]
