(** Sorted set of local-time stamps (flat float array).

    Backs Initiator-Accept's last(G,m) variable: an existential
    "was it defined at [at]?" query and a cleanup-time retention trim.
    Queries are allocation-free O(log m) binary searches; insertion keeps
    the array sorted (amortized O(1) for the common monotone-append case)
    and drops exact duplicates, which no existential reader can observe. *)

type t

val create : unit -> t
val size : t -> int
val is_empty : t -> bool
val clear : t -> unit

(** Insert a stamp, keeping the array sorted; exact duplicates are dropped. *)
val add : t -> float -> unit

(** [defined_at t ~at ~expiry] is [true] iff some stamp [s] satisfies
    [s <= at] and [at -. s <= expiry]. *)
val defined_at : t -> at:float -> expiry:float -> bool

(** Keep exactly the stamps [s] with [lo <= s <= hi]. *)
val retain_range : t -> lo:float -> hi:float -> unit

(** Ascending; for tests. *)
val to_list : t -> float list
