(* Recurrent agreements by rotating Generals.

   The protocol supports an unbounded stream of agreements: any node may act
   as General, subject to the Sending Validity Criteria the node glue
   enforces — IG1 (at least Delta_0 between initiations by the same General),
   IG2 (at least Delta_v between initiations of the same value) and IG3 (a
   Delta_reset quiet period after a noticed failure).

   Here five Generals take turns proposing configuration updates; one node
   crashes halfway through and later recovers, demonstrating that the stream
   keeps flowing as long as at most f nodes are out at a time.

     dune exec examples/recurrent_agreement.exe *)

module Sim = Ssba_sim
module Net = Ssba_net
module Core = Ssba_core

let () =
  let n = 7 in
  let params = Core.Params.default n in
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create 99 in
  let delay =
    Net.Delay.uniform ~lo:(0.1 *. params.Core.Params.delta)
      ~hi:params.Core.Params.delta
  in
  let net = Net.Network.create ~engine ~n ~delay ~rng:(Sim.Rng.split rng) () in
  let decided : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let nodes =
    Array.init n (fun id ->
        let clock =
          Sim.Clock.random (Sim.Rng.split rng) ~rho:params.Core.Params.rho
            ~max_offset:0.5
        in
        let node = Core.Node.create ~id ~params ~clock ~engine ~net () in
        Core.Node.subscribe node (fun r ->
            match r.Core.Types.outcome with
            | Core.Types.Decided v ->
                Hashtbl.replace decided v
                  (1 + Option.value ~default:0 (Hashtbl.find_opt decided v))
            | Core.Types.Aborted -> ());
        node)
  in
  (* Ten updates, proposed by Generals 0..4 in turn, spaced beyond IG1. *)
  let spacing = 2.0 *. params.Core.Params.delta_0 in
  for i = 0 to 9 do
    let g = i mod 5 in
    let at = 0.05 +. (float_of_int i *. spacing) in
    Sim.Engine.schedule engine ~at (fun () ->
        match Core.Node.propose nodes.(g) (Printf.sprintf "update-%d" i) with
        | Ok () -> Fmt.pr "[%.3f] node %d proposes update-%d@." at g i
        | Error e ->
            Fmt.pr "[%.3f] node %d refused: %s@." at g
              (Core.Node.string_of_propose_error e))
  done;
  (* Node 6 crashes during updates 3-6 and then recovers. *)
  Sim.Engine.schedule engine ~at:(0.05 +. (3.0 *. spacing)) (fun () ->
      Fmt.pr "[crash] node 6 goes silent@.";
      Net.Network.set_muted net 6 true);
  Sim.Engine.schedule engine ~at:(0.05 +. (7.0 *. spacing)) (fun () ->
      Fmt.pr "[recover] node 6 is back@.";
      Net.Network.set_muted net 6 false);
  let _ = Sim.Engine.run ~until:(0.05 +. (12.0 *. spacing)) engine in
  Fmt.pr "@.decisions per value (out of %d nodes):@." n;
  Hashtbl.fold (fun v c acc -> (v, c) :: acc) decided []
  |> List.sort compare
  |> List.iter (fun (v, c) -> Fmt.pr "  %-10s decided by %d node(s)@." v c)
