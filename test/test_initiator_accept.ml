(* Unit tests for the Initiator-Accept primitive (paper Figure 2), driven
   through a fake context: we feed messages by hand and observe sends,
   state and the I-accept callback.

   Parameters: n = 7, f = 2, so the strong quorum is 5 and the weak one 3. *)

open Helpers
open Ssba_core
module Ia = Initiator_accept

let params = Params.default 7
let d = params.Params.d

type h = {
  fake : Fake.t;
  ia : Ia.t;
  accepted : (Types.value * float) option ref;
}

let mk ?(g = 0) () =
  let fake, ctx = Fake.make params in
  let ia = Ia.create ~ctx ~g () in
  let accepted = ref None in
  Ia.set_on_accept ia (fun v ~tau_g -> accepted := Some (v, tau_g));
  { fake; ia; accepted }

let support h ~sender v = Ia.handle_message h.ia ~kind:Types.Support ~sender ~v
let approve h ~sender v = Ia.handle_message h.ia ~kind:Types.Approve ~sender ~v
let ready h ~sender v = Ia.handle_message h.ia ~kind:Types.Ready ~sender ~v

(* Drive the full pipeline to the I-accept for value [v]: 5 supports,
   5 approves, 5 readys, each batch spread over ~0.1d. *)
let drive_accept ?(senders = [ 1; 2; 3; 4; 5 ]) h v =
  List.iter (fun s -> support h ~sender:s v) senders;
  Fake.advance h.fake (0.2 *. d);
  List.iter (fun s -> approve h ~sender:s v) senders;
  Fake.advance h.fake (0.2 *. d);
  List.iter (fun s -> ready h ~sender:s v) senders

let test_block_k_sends_support () =
  let h = mk () in
  Ia.handle_initiator h.ia "m";
  check_int "support sent" 1 (Fake.count_kind h.fake "support");
  match Ia.i_value h.ia "m" with
  | Some r -> check_float "recording time = tau - d" (h.fake.Fake.now -. d) r
  | None -> Alcotest.fail "i_values not set by K2"

let test_k1_blocks_second_value () =
  let h = mk () in
  Ia.handle_initiator h.ia "m1";
  Fake.advance h.fake (2.0 *. d);
  Ia.handle_initiator h.ia "m2";
  check_int "no support for the second value while i_values[m1] lives" 1
    (Fake.count_kind h.fake "support")

let test_k1_blocks_recent_support () =
  let h = mk () in
  Ia.handle_initiator h.ia "m";
  (* same value again immediately: the "sent support within [tau-d, tau]"
     and last(G,m) guards both bite *)
  Ia.handle_initiator h.ia "m";
  check_int "only one support" 1 (Fake.count_kind h.fake "support")

let test_k1_blocks_last_gm_freshness () =
  let h = mk () in
  (* L-activity for value "m" (3 supports in a tight window) sets last(G,m)
     via L2, which must block a later block-K for "m" (Definition 8) *)
  List.iter (fun s -> support h ~sender:s "m") [ 1; 2; 3 ];
  check_bool "no accept yet" true (Ia.accepted h.ia = None);
  Fake.advance h.fake (2.0 *. d);
  Ia.handle_initiator h.ia "m";
  check_int "K1 rejected: no support sent" 0 (Fake.count_kind h.fake "support")

let test_l_quorum_sends_approve () =
  let h = mk () in
  List.iter (fun s -> support h ~sender:s "m") [ 1; 2; 3; 4 ];
  check_int "4 < n-f: no approve" 0 (Fake.count_kind h.fake "approve");
  support h ~sender:5 "m";
  check_int "5 = n-f supports: approve sent" 1 (Fake.count_kind h.fake "approve")

let test_l3_window_too_wide () =
  let h = mk () in
  (* 5 distinct supports, but spread over 3d: never 5 within a 2d window *)
  List.iteri
    (fun i s ->
      support h ~sender:s "m";
      if i < 4 then Fake.advance h.fake (0.75 *. d))
    [ 1; 2; 3; 4; 5 ];
  check_int "no approve from a stretched burst" 0 (Fake.count_kind h.fake "approve")

let test_l1_recording_time () =
  let h = mk () in
  (* No invocation: the recording time comes from L2 = now - alpha - 2d. *)
  support h ~sender:1 "m";
  Fake.advance h.fake (0.5 *. d);
  support h ~sender:2 "m";
  Fake.advance h.fake (0.5 *. d);
  support h ~sender:3 "m";
  (match Ia.i_value h.ia "m" with
  | Some r ->
      (* alpha = 1d (span of the three), recording = now - 1d - 2d *)
      check_float ~eps:1e-9 "L2 recording time" (h.fake.Fake.now -. (3.0 *. d)) r
  | None -> Alcotest.fail "L1/L2 did not fire");
  (* a later, tighter burst must only move the recording time forward *)
  Fake.advance h.fake (1.0 *. d);
  List.iter (fun s -> support h ~sender:s "m") [ 4; 5; 6 ];
  match Ia.i_value h.ia "m" with
  | Some r -> check_float "max with newer recording" (h.fake.Fake.now -. (2.0 *. d)) r
  | None -> Alcotest.fail "recording lost"

let test_m_blocks () =
  let h = mk () in
  List.iter (fun s -> approve h ~sender:s "m") [ 1; 2 ];
  check_bool "2 < n-2f: no ready flag" false (Ia.ready_flag_fresh h.ia "m");
  approve h ~sender:3 "m";
  check_bool "3 = n-2f approves: ready flag set (M2)" true
    (Ia.ready_flag_fresh h.ia "m");
  check_int "3 < n-f: no ready sent" 0 (Fake.count_kind h.fake "ready");
  approve h ~sender:4 "m";
  approve h ~sender:5 "m";
  check_int "5 approves: ready sent (M4)" 1 (Fake.count_kind h.fake "ready")

let test_n1_amplification () =
  let h = mk () in
  (* ready flag via M2 (3 approves), then n-2f readys trigger our own ready
     even though M3's n-f approve quorum never formed *)
  List.iter (fun s -> approve h ~sender:s "m") [ 1; 2; 3 ];
  check_int "no ready yet" 0 (Fake.count_kind h.fake "ready");
  List.iter (fun s -> ready h ~sender:s "m") [ 1; 2; 3 ];
  check_int "N2 amplification sent ready" 1 (Fake.count_kind h.fake "ready")

let test_n_requires_ready_flag () =
  let h = mk () in
  (* readys without any approve activity must not be amplified or accepted *)
  List.iter (fun s -> ready h ~sender:s "m") [ 1; 2; 3; 4; 5 ];
  check_int "no ready sent" 0 (Fake.count_kind h.fake "ready");
  check_bool "no accept" true (Ia.accepted h.ia = None)

let test_full_accept () =
  let h = mk () in
  Ia.handle_initiator h.ia "m";
  let k2_anchor = Option.get (Ia.i_value h.ia "m") in
  Fake.advance h.fake (0.3 *. d);
  drive_accept h "m";
  (match !(h.accepted) with
  | Some (v, tau_g) ->
      check_str "accepted value" "m" v;
      check_bool "anchor is the K2 recording time or later" true (tau_g >= k2_anchor -. 1e-12)
  | None -> Alcotest.fail "no I-accept");
  match Ia.accepted h.ia with
  | Some (v, _, _) -> check_str "stored accept" "m" v
  | None -> Alcotest.fail "accepted not recorded"

let test_accept_only_once () =
  let h = mk () in
  Ia.handle_initiator h.ia "m";
  drive_accept h "m";
  h.accepted := None;
  (* more readys must not re-trigger N4 *)
  Fake.advance h.fake (4.0 *. d);
  List.iter (fun s -> ready h ~sender:s "m") [ 1; 2; 3; 4; 5 ];
  check_bool "N4 not executed twice" true (!(h.accepted) = None)

let test_ignore_window_after_accept () =
  let h = mk () in
  Ia.handle_initiator h.ia "m";
  drive_accept h "m";
  check_bool "ignoring (G,m)" true (Ia.ignoring h.ia "m");
  Fake.advance h.fake (3.5 *. d);
  check_bool "ignore window over after 3d" false (Ia.ignoring h.ia "m")

let test_accept_sets_last_g_blocking_k () =
  let h = mk () in
  Ia.handle_initiator h.ia "m";
  drive_accept h "m";
  Fake.clear_sent h.fake;
  (* last(G) is set by N4; a new initiation within Delta_0 - 6d is refused *)
  Fake.advance h.fake (4.0 *. d);
  Ia.handle_initiator h.ia "m2";
  check_int "K1 blocked by last(G)" 0 (Fake.count_kind h.fake "support");
  (* after last(G) expires (Delta_0 - 6d = 7d) and cleanup, a new value flows *)
  Fake.advance h.fake (9.0 *. d);
  Ia.cleanup h.ia;
  Ia.reset h.ia;
  Ia.handle_initiator h.ia "m2";
  check_int "K1 passes after expiry" 1 (Fake.count_kind h.fake "support")

let test_cleanup_decays_messages () =
  let h = mk () in
  List.iter (fun s -> support h ~sender:s "m") [ 1; 2; 3; 4 ];
  Fake.advance h.fake (params.Params.delta_rmv +. d);
  Ia.cleanup h.ia;
  Fake.clear_sent h.fake;
  (* the decayed supports must not combine with a fresh one into a quorum *)
  support h ~sender:5 "m";
  check_int "stale supports gone" 0 (Fake.count_kind h.fake "approve")

let test_cleanup_drops_future_accept () =
  let h = mk () in
  let rng = Ssba_sim.Rng.create 3 in
  Ia.scramble rng ~values:[ "x" ] h.ia;
  (* whatever garbage was planted, cleanup plus quiet time must clear the
     accept or leave a consistent one *)
  Fake.advance h.fake (params.Params.delta_rmv +. (2.0 *. d));
  Ia.cleanup h.ia;
  match Ia.accepted h.ia with
  | None -> ()
  | Some (_, tau_g, ta) ->
      check_bool "surviving accept is time-consistent" true
        (tau_g <= ta && ta <= h.fake.Fake.now)

let test_reset_clears_accept_keeps_rate_limits () =
  let h = mk () in
  Ia.handle_initiator h.ia "m";
  drive_accept h "m";
  Ia.reset h.ia;
  check_bool "accept cleared" true (Ia.accepted h.ia = None);
  Fake.clear_sent h.fake;
  (* last(G) survives the reset: immediate re-initiation is still refused *)
  Ia.handle_initiator h.ia "m2";
  check_int "rate limit survives reset" 0 (Fake.count_kind h.fake "support")

let test_invocation_report () =
  let h = mk () in
  Ia.handle_initiator h.ia "m";
  let rep = Ia.invocation_report h.ia in
  check_bool "invoked_at set" true (rep.Ia.invoked_at <> None);
  check_bool "l4 not yet" true (rep.Ia.l4_at = None);
  drive_accept h "m";
  let rep = Ia.invocation_report h.ia in
  check_bool "l4 recorded" true (rep.Ia.l4_at <> None);
  check_bool "m4 recorded" true (rep.Ia.m4_at <> None);
  check_bool "n4 recorded" true (rep.Ia.n4_at <> None);
  let inv = Option.get rep.Ia.invoked_at in
  check_bool "l4 within 2d" true (Option.get rep.Ia.l4_at -. inv <= 2.0 *. d);
  check_bool "n4 within 4d" true (Option.get rep.Ia.n4_at -. inv <= 4.0 *. d)

let test_duplicate_sends_suppressed () =
  let h = mk () in
  List.iter (fun s -> support h ~sender:s "m") [ 1; 2; 3; 4; 5 ];
  (* more supports keep the L3 condition true, but the approve was just sent *)
  List.iter (fun s -> support h ~sender:s "m") [ 6; 1; 2 ];
  check_int "approve deduplicated" 1 (Fake.count_kind h.fake "approve")

let test_sender_diversity_required () =
  let h = mk () in
  (* the same sender reporting five times is one distinct sender *)
  for _ = 1 to 5 do
    support h ~sender:1 "m"
  done;
  check_int "no quorum from one sender" 0 (Fake.count_kind h.fake "approve")

let suite =
  [
    case "block K sends support" test_block_k_sends_support;
    case "K1 blocks second value" test_k1_blocks_second_value;
    case "K1 blocks recent support" test_k1_blocks_recent_support;
    case "K1 last(G,m) freshness" test_k1_blocks_last_gm_freshness;
    case "L quorum sends approve" test_l_quorum_sends_approve;
    case "L3 window too wide" test_l3_window_too_wide;
    case "L1/L2 recording time" test_l1_recording_time;
    case "M blocks" test_m_blocks;
    case "N1 amplification" test_n1_amplification;
    case "N requires ready flag" test_n_requires_ready_flag;
    case "full accept" test_full_accept;
    case "accept only once" test_accept_only_once;
    case "ignore window" test_ignore_window_after_accept;
    case "last(G) blocks re-initiation" test_accept_sets_last_g_blocking_k;
    case "cleanup decays messages" test_cleanup_decays_messages;
    case "cleanup fixes scrambled accept" test_cleanup_drops_future_accept;
    case "reset semantics" test_reset_clears_accept_keeps_rate_limits;
    case "invocation report (IG3)" test_invocation_report;
    case "duplicate sends suppressed" test_duplicate_sends_suppressed;
    case "sender diversity required" test_sender_diversity_required;
  ]
