(* Message-delay policies.

   The bounded-delay model (paper §2) only requires every message between
   correct nodes to arrive within delta real-time units once the network is
   non-faulty. Within that bound the adversary may choose per-message delays;
   the policies below let scenarios exercise the interesting corners:
   uniformly fast networks (the message-driven speedup of experiment E3),
   worst-case-lagging links, asymmetric links, and arbitrary custom
   schedules. *)

type t =
  | Fixed of float
  | Uniform of { lo : float; hi : float }
  | Bimodal of { fast : float; slow : float; slow_prob : float }
      (* mostly-fast links with occasional worst-case stragglers *)
  | Per_link of (src:int -> dst:int -> float)
  | Custom of (rng:Ssba_sim.Rng.t -> src:int -> dst:int -> now:float -> float)
  | Scaled of { factor : float; base : t }
      (* a delay surge: every draw of [base], multiplied by [factor]. Drawing
         consumes exactly the RNG values [base] would, so surging and
         restoring a policy mid-run never shifts the random stream. *)

let fixed d =
  if d < 0.0 then invalid_arg "Delay.fixed: negative delay";
  Fixed d

let uniform ~lo ~hi =
  if lo < 0.0 || hi < lo then invalid_arg "Delay.uniform: bad range";
  Uniform { lo; hi }

let bimodal ~fast ~slow ~slow_prob =
  if fast < 0.0 || slow < fast || slow_prob < 0.0 || slow_prob > 1.0 then
    invalid_arg "Delay.bimodal: bad parameters";
  Bimodal { fast; slow; slow_prob }

let per_link f = Per_link f
let custom f = Custom f

let scaled factor base =
  if factor <= 0.0 then invalid_arg "Delay.scaled: non-positive factor";
  Scaled { factor; base }

(* Split so the overwhelmingly common policies ([Uniform]/[Fixed]) can be
   inlined — with the RNG draw chain unboxed — straight into the network's
   per-destination send loop; a recursive [draw] would defeat inlining. *)
let rec draw_rare t ~rng ~src ~dst ~now =
  match t with
  | Fixed d -> d
  | Uniform { lo; hi } -> Ssba_sim.Rng.float_in_range rng ~lo ~hi
  | Bimodal { fast; slow; slow_prob } ->
      if Ssba_sim.Rng.float rng 1.0 < slow_prob then slow else fast
  | Per_link f -> f ~src ~dst
  | Custom f -> f ~rng ~src ~dst ~now
  | Scaled { factor; base } -> factor *. draw_rare base ~rng ~src ~dst ~now

let[@inline always] draw t ~rng ~src ~dst ~now =
  match t with
  | Fixed d -> d
  | Uniform { lo; hi } -> Ssba_sim.Rng.float_in_range rng ~lo ~hi
  | other -> draw_rare other ~rng ~src ~dst ~now
