lib/pulse/pulse_sync.mli: Ssba_core
