(* Self-stabilization / convergence tests (Corollary 5): from randomized
   arbitrary states, once the environment is coherent for Delta_stb, the
   protocol works and keeps its properties. *)

open Helpers
open Ssba_core
module H = Ssba_harness

let values = [ "x"; "y"; "z"; "m" ]

let scrambled_scenario ~seed ~propose_frac ?(roles = []) ?(g = 0) () =
  let params = Params.default 7 in
  let t_p = propose_frac *. params.Params.delta_stb in
  H.Scenario.default ~name:"conv" ~seed ~roles
    ~events:[ H.Scenario.Scramble { at = 0.0; values; net_garbage = 150 } ]
    ~proposals:[ { H.Scenario.g; v = "m"; at = t_p } ]
    ~horizon:(t_p +. (3.0 *. params.Params.delta_agr))
    params

(* Corollary 5, quantified: for any seed, a proposal after Delta_stb decides
   unanimously. *)
let prop_convergence_by_dstb =
  QCheck.Test.make ~name:"proposal at Delta_stb decides (Cor. 5)" ~count:25
    QCheck.(pair (int_range 0 10_000) (int_range 0 6))
    (fun (seed, g) ->
      let sc = scrambled_scenario ~seed ~propose_frac:1.0 ~g () in
      let params = sc.H.Scenario.params in
      let res = H.Runner.run sc in
      let post =
        List.filter
          (fun (e : H.Metrics.episode) ->
            H.Metrics.first_return e >= params.Params.delta_stb)
          (H.Metrics.episodes res)
      in
      List.exists
        (fun e -> H.Checks.validity ~correct:res.H.Runner.correct ~v:"m" e)
        post)

(* Safety after stabilization: pre-stabilization the theory allows anything —
   scrambled memory can hold forged quorums and produce briefly divergent
   returns (we have observed this, e.g. seed 9742 with Byzantine company) —
   but once Delta_stb has passed, no violation may appear. *)
let prop_no_divergence_after_stabilization =
  QCheck.Test.make ~name:"no divergence after Delta_stb" ~count:25
    QCheck.(pair (int_range 0 10_000) (int_range 1 10))
    (fun (seed, tenths) ->
      let sc =
        scrambled_scenario ~seed ~propose_frac:(0.1 *. float_of_int tenths) ()
      in
      let params = sc.H.Scenario.params in
      let res = H.Runner.run sc in
      H.Checks.pairwise_agreement ~after:params.Params.delta_stb res = [])

(* Convergence with live Byzantine nodes: scramble + f permanent adversaries;
   post-stabilization proposals by a correct General still decide. *)
let prop_convergence_with_byzantine =
  QCheck.Test.make ~name:"convergence despite f live Byzantine nodes" ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let params = Params.default 7 in
      let d = params.Params.d in
      let roles =
        [
          (5, H.Scenario.Byzantine (Ssba_adversary.Strategies.spam ~period:(5.0 *. d) ~values));
          (6, H.Scenario.Byzantine (Ssba_adversary.Strategies.equivocator ~v1:"x" ~v2:"y"));
        ]
      in
      let sc = scrambled_scenario ~seed ~propose_frac:1.0 ~roles ~g:0 () in
      let res = H.Runner.run sc in
      H.Checks.pairwise_agreement ~after:params.Params.delta_stb res = []
      &&
      let post =
        List.filter
          (fun (e : H.Metrics.episode) ->
            H.Metrics.first_return e >= params.Params.delta_stb
            && e.H.Metrics.g = 0)
          (H.Metrics.episodes res)
      in
      List.exists
        (fun (e : H.Metrics.episode) ->
          List.exists
            (fun (r : Types.return_info) -> r.Types.outcome = Types.Decided "m")
            e.H.Metrics.returns)
        post)

let test_incoherent_network_then_recovery () =
  (* the full §2 story: drops + partition + scrambled state, then the
     network heals, and after Delta_stb agreement works *)
  let params = Params.default 7 in
  let t_heal = 0.1 in
  let t_p = t_heal +. params.Params.delta_stb in
  let sc =
    H.Scenario.default ~name:"incoherent" ~seed:77
      ~events:
        [
          H.Scenario.Scramble { at = 0.0; values; net_garbage = 300 };
          H.Scenario.Drop_prob { at = 0.0; p = 0.5 };
          H.Scenario.Partition { at = 0.0; blocked = ([ 0; 1; 2 ], [ 3; 4; 5; 6 ]) };
          H.Scenario.Heal { at = t_heal };
        ]
      ~proposals:[ { H.Scenario.g = 3; v = "m"; at = t_p } ]
      ~horizon:(t_p +. (3.0 *. params.Params.delta_agr))
      (Params.default 7)
  in
  let res = H.Runner.run sc in
  check_bool "agreement holds after stabilization" true
    (H.Checks.pairwise_agreement ~after:(t_heal +. params.Params.delta_stb) res = []);
  let post =
    List.filter
      (fun (e : H.Metrics.episode) -> H.Metrics.first_return e >= t_p)
      (H.Metrics.episodes res)
  in
  check_bool "post-heal proposal decides" true
    (List.exists
       (fun e -> H.Checks.validity ~correct:res.H.Runner.correct ~v:"m" e)
       post)

let test_repeated_scrambles () =
  (* several transient faults in a row; the last one is followed by quiet
     and a successful agreement *)
  let params = Params.default 7 in
  let dstb = params.Params.delta_stb in
  let sc =
    H.Scenario.default ~name:"repeat" ~seed:78
      ~events:
        [
          H.Scenario.Scramble { at = 0.0; values; net_garbage = 100 };
          H.Scenario.Scramble { at = 0.2 *. dstb; values; net_garbage = 100 };
          H.Scenario.Scramble { at = 0.4 *. dstb; values; net_garbage = 100 };
        ]
      ~proposals:[ { H.Scenario.g = 2; v = "m"; at = (0.4 +. 1.0) *. dstb } ]
      ~horizon:((0.4 +. 1.0) *. dstb +. (3.0 *. params.Params.delta_agr))
      params
  in
  let res = H.Runner.run sc in
  check_bool "agreement after the last scramble + Dstb" true
    (List.exists
       (fun (e : H.Metrics.episode) ->
         H.Metrics.first_return e >= 1.2 *. dstb
         && H.Checks.validity ~correct:res.H.Runner.correct ~v:"m" e)
       (H.Metrics.episodes res))

let suite =
  [
    Helpers.qcheck prop_convergence_by_dstb;
    Helpers.qcheck prop_no_divergence_after_stabilization;
    Helpers.qcheck prop_convergence_with_byzantine;
    case "incoherent network then recovery" test_incoherent_network_then_recovery;
    case "repeated scrambles" test_repeated_scrambles;
  ]
