(* Protocol constants (paper §2 and §3).

   All durations derive from [d = (delta + pi) * (1 + rho)], the bound on the
   elapsed local time from a correct node sending a message until every
   correct node has received and processed it. The Delta_* cascade below is
   copied verbatim from the notation list in §3:

     tau_skew    = 6d                 bound between correct nodes' tau^G anchors
     Phi         = tau_skew + 2d      duration of one phase
     Delta_agr   = (2f + 1) * Phi     upper bound on running the agreement
     Delta_0     = 13d                min spacing of initiations (any value)
     Delta_rmv   = Delta_agr + Delta_0   decay horizon for old values
     Delta_v     = 15d + 2 Delta_rmv  min spacing of initiations (same value)
     Delta_node  = Delta_v + Delta_agr   non-faulty -> correct promotion time
     Delta_reset = 20d + 4 Delta_rmv  General quiet period after a failure
     Delta_stb   = 2 Delta_reset      stabilization time of the system *)

(* Block R's fast-path gate (Figure 1) compares [tau - tau_g] against a
   slack budget. The figure as written uses 4d, but [IA-1D] guarantees the
   General's value reaches every correct node within 5d of the earliest
   anchor, so the 4d gate is one d tighter than the proof needs. The knob
   keeps all three behaviours co-resident so the model checker and the fuzz
   corpora can compare them:
     Legacy        — Figure 1 verbatim: gate at 4d, block S counts only
                     broadcasters distinct from the General;
     Widen         — gate at 5d (the [IA-1D] slack), block S unchanged;
     Count_general — gate stays at 4d, but a node that already I-accepted m
                     counts the General's own msgd-broadcast of m as the
                     r = 1 proof in block S. *)
type r_slack = Legacy | Widen | Count_general

let default_r_slack = Widen

let r_slack_to_string = function
  | Legacy -> "legacy"
  | Widen -> "widen"
  | Count_general -> "general"

let r_slack_of_string = function
  | "legacy" -> Some Legacy
  | "widen" -> Some Widen
  | "general" -> Some Count_general
  | _ -> None

type t = {
  n : int;  (* number of nodes *)
  f : int;  (* bound on concurrent permanent faults; requires n > 3f *)
  delta : float;  (* max message delay while the network is correct *)
  pi : float;  (* max processing time *)
  rho : float;  (* clock drift bound *)
  d : float;
  tau_skew : float;
  phi : float;
  delta_agr : float;
  delta_0 : float;
  delta_rmv : float;
  delta_v : float;
  delta_node : float;
  delta_reset : float;
  delta_stb : float;
  r_slack : r_slack;  (* block R gate variant; see above *)
}

let make ~n ~f ~delta ~pi ~rho =
  if n <= 0 then invalid_arg "Params.make: n must be positive";
  if f < 0 then invalid_arg "Params.make: f must be non-negative";
  if delta <= 0.0 then invalid_arg "Params.make: delta must be positive";
  if pi < 0.0 then invalid_arg "Params.make: pi must be non-negative";
  if rho < 0.0 || rho >= 1.0 then invalid_arg "Params.make: rho out of [0,1)";
  let d = (delta +. pi) *. (1.0 +. rho) in
  let tau_skew = 6.0 *. d in
  let phi = tau_skew +. (2.0 *. d) in
  let delta_agr = float_of_int ((2 * f) + 1) *. phi in
  let delta_0 = 13.0 *. d in
  let delta_rmv = delta_agr +. delta_0 in
  let delta_v = (15.0 *. d) +. (2.0 *. delta_rmv) in
  let delta_node = delta_v +. delta_agr in
  let delta_reset = (20.0 *. d) +. (4.0 *. delta_rmv) in
  let delta_stb = 2.0 *. delta_reset in
  {
    n;
    f;
    delta;
    pi;
    rho;
    d;
    tau_skew;
    phi;
    delta_agr;
    delta_0;
    delta_rmv;
    delta_v;
    delta_node;
    delta_reset;
    delta_stb;
    r_slack = default_r_slack;
  }

let with_r_slack t r_slack = { t with r_slack }

(* Largest f satisfying n > 3f. *)
let max_faults n = (n - 1) / 3

let default ?f ?(delta = 0.001) ?(pi = 0.0001) ?(rho = 1e-4)
    ?(r_slack = default_r_slack) n =
  let f = match f with Some f -> f | None -> max_faults n in
  with_r_slack (make ~n ~f ~delta ~pi ~rho) r_slack

(* Block R's fast-path deadline: [tau - tau_g <= r_gate t] admits the round-0
   decide. Under [Count_general] the gate itself stays at the figure's 4d —
   the slack is recovered on the block-S side instead. *)
let r_gate t =
  (match t.r_slack with Widen -> 5.0 | Legacy | Count_general -> 4.0) *. t.d

(* Effective delay bound over a lossy link masked by the reliable transport
   (lib/transport). A frame lost with probability [p] is retransmitted on an
   exponential backoff schedule rto, 2·rto, 4·rto, …; after [retries]
   retransmissions the last attempt leaves the sender at
   rto + 2·rto + … + 2^(retries-1)·rto = rto·(2^retries - 1) past the
   original send, and arrives at most [delta] later. So once the network is
   otherwise coherent, a payload the transport does deliver is delivered
   within delta + rto·(2^retries - 1); instantiating the paper's cascade at
   that bound keeps every timeout sound over the lossy link. With p = 0 the
   transport never retransmits on the success path and delta stands. *)
let delta_eff ~delta ~p ~rto ~retries =
  if p <= 0.0 then delta
  else begin
    if rto <= 0.0 then invalid_arg "Params.delta_eff: rto must be positive";
    if retries < 0 then invalid_arg "Params.delta_eff: retries must be >= 0";
    delta +. (rto *. (ldexp 1.0 retries -. 1.0))
  end

(* Probability that a payload is never delivered at all: the initial attempt
   and every one of the [retries] retransmissions must be lost
   independently. Campaigns pick [retries] to push this below the scale of
   the corpus (e.g. p = 0.3, retries = 12 gives 0.3^13 ~ 1.6e-7). *)
let residual_loss ~p ~retries =
  if p <= 0.0 then 0.0 else p ** float_of_int (retries + 1)

let validate t =
  if t.n <= 3 * t.f then
    Error (Printf.sprintf "resilience violated: n = %d <= 3f = %d" t.n (3 * t.f))
  else Ok ()

(* Quorum thresholds used throughout the primitives. *)
let quorum t = t.n - t.f
let weak_quorum t = t.n - (2 * t.f)

let pp ppf t =
  Fmt.pf ppf
    "n=%d f=%d delta=%g pi=%g rho=%g d=%g Phi=%g Dagr=%g D0=%g Drmv=%g Dv=%g Dnode=%g Dreset=%g Dstb=%g R=%s"
    t.n t.f t.delta t.pi t.rho t.d t.phi t.delta_agr t.delta_0 t.delta_rmv
    t.delta_v t.delta_node t.delta_reset t.delta_stb
    (r_slack_to_string t.r_slack)
