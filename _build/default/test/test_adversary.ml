(* Tests for the Byzantine behaviour framework and concrete strategies. *)

open Helpers
open Ssba_core
module H = Ssba_harness
module S = Ssba_adversary.Strategies
module RS = Ssba_adversary.Round_stretcher

let params7 = Params.default 7

let run_scenario ?(n = 7) ?(seed = 3) ?(horizon = 1.0) ?(proposals = []) roles =
  let params = Params.default n in
  let sc = H.Scenario.default ~name:"adv" ~seed ~roles ~proposals ~horizon params in
  H.Runner.run sc

let test_silent_general_no_returns () =
  let res = run_scenario [ (0, H.Scenario.Byzantine S.silent) ] in
  check_int "nothing happens" 0 (List.length res.H.Runner.returns)

let test_spam_cannot_forge_decisions () =
  (* Spammers cannot make correct nodes decide a value for a *correct*
     General that proposed nothing: only spammers' own ids can carry their
     Initiator payloads (authenticated channels), so any decided episode
     must name a spammer as General. *)
  let res =
    run_scenario ~horizon:1.0
      [
        (5, H.Scenario.Byzantine (S.spam ~period:(3.0 *. params7.Params.d) ~values:[ "a"; "b" ]));
        (6, H.Scenario.Byzantine (S.spam ~period:(3.0 *. params7.Params.d) ~values:[ "a"; "b" ]));
      ]
  in
  List.iter
    (fun (r : Types.return_info) ->
      check_bool "only spammers' own Generals decide" true
        (List.mem r.Types.g [ 5; 6 ]))
    res.H.Runner.returns;
  check_bool "agreement holds under spam" true
    (H.Checks.pairwise_agreement res = [])

let test_spam_bounded () =
  (* the rate limit keeps spam linear in time, not exploding *)
  let res =
    run_scenario ~horizon:0.5
      [ (6, H.Scenario.Byzantine (S.spam ~period:(5.0 *. params7.Params.d) ~values:[ "a" ])) ]
  in
  check_bool "bounded message count" true (res.H.Runner.messages_sent < 200_000)

let test_mimic_agreement_holds () =
  let res =
    run_scenario
      ~proposals:[ { H.Scenario.g = 0; v = "m"; at = 0.05 } ]
      [
        (5, H.Scenario.Byzantine (S.mimic ~delay:(2.0 *. params7.Params.d)));
        (6, H.Scenario.Byzantine (S.mimic ~delay:(2.0 *. params7.Params.d)));
      ]
  in
  check_bool "agreement holds" true (H.Checks.pairwise_agreement res = []);
  let decided =
    List.filter
      (fun (r : Types.return_info) -> r.Types.outcome = Types.Decided "m")
      res.H.Runner.returns
  in
  check_int "all 5 correct decide the proposal" 5 (List.length decided)

let test_two_faced_no_divergence () =
  List.iter
    (fun seed ->
      let res =
        run_scenario ~seed ~horizon:2.0
          [ (0, H.Scenario.Byzantine (S.two_faced_general ~v1:"a" ~v2:"b" ~at:0.05)) ]
      in
      check_bool "no divergent decisions" true (H.Checks.pairwise_agreement res = []))
    [ 1; 2; 3; 4; 5 ]

let test_equivocators_with_correct_general () =
  let res =
    run_scenario
      ~proposals:[ { H.Scenario.g = 0; v = "real"; at = 0.05 } ]
      [
        (5, H.Scenario.Byzantine (S.equivocator ~v1:"fake1" ~v2:"fake2"));
        (6, H.Scenario.Byzantine (S.equivocator ~v1:"fake1" ~v2:"fake2"));
      ]
  in
  check_bool "agreement holds" true (H.Checks.pairwise_agreement res = []);
  check_bool "the real value wins" true
    (List.exists
       (fun (r : Types.return_info) -> r.Types.outcome = Types.Decided "real")
       res.H.Runner.returns)

let test_partial_general_relay () =
  (* initiation towards n - f nodes: the relay property must pull the
     remaining correct nodes to the same decision *)
  let n = 7 in
  let params = Params.default n in
  let targets = List.init (n - params.Params.f) (fun i -> i + 1) in
  let res =
    run_scenario ~horizon:2.0
      [ (0, H.Scenario.Byzantine (S.partial_general ~v:"p" ~at:0.05 ~targets)) ]
  in
  let deciders =
    List.filter_map
      (fun (r : Types.return_info) ->
        if r.Types.outcome = Types.Decided "p" then Some r.Types.node else None)
      res.H.Runner.returns
  in
  check_int "all 6 correct nodes decide, invited or not" 6
    (List.length (List.sort_uniq compare deciders));
  check_bool "agreement holds" true (H.Checks.pairwise_agreement res = [])

let test_stagger_general_safe () =
  List.iter
    (fun gap_d ->
      let res =
        run_scenario ~horizon:2.0
          [
            ( 0,
              H.Scenario.Byzantine
                (S.stagger_general ~v:"s" ~at:0.05 ~gap:(gap_d *. params7.Params.d)) );
          ]
      in
      check_bool "agreement holds for any stagger" true
        (H.Checks.pairwise_agreement res = []))
    [ 0.1; 0.5; 1.0; 2.0; 5.0 ]

let test_flip_flop_safe () =
  let res =
    run_scenario
      ~proposals:[ { H.Scenario.g = 0; v = "m"; at = 0.05 } ]
      [ (6, H.Scenario.Byzantine (S.flip_flop ~period:0.05 ~values:[ "z" ])) ]
  in
  check_bool "agreement holds" true (H.Checks.pairwise_agreement res = [])

(* --- round stretcher ----------------------------------------------------- *)

let stretch ~n ~fprime =
  let params = Params.default n in
  let eps = 0.1 *. params.Params.d in
  let engine = Ssba_sim.Engine.create () in
  let rng = Ssba_sim.Rng.create 5 in
  let net =
    Ssba_net.Network.create ~engine ~n ~delay:(Ssba_net.Delay.fixed eps)
      ~rng:(Ssba_sim.Rng.split rng) ()
  in
  let colluders = List.init fprime (fun i -> i) in
  let returns = ref [] in
  List.init n (fun i -> i)
  |> List.iter (fun id ->
         if not (List.mem id colluders) then begin
           let node =
             Node.create ~id ~params ~clock:Ssba_sim.Clock.perfect ~engine ~net ()
           in
           Node.subscribe node (fun r -> returns := r :: !returns)
         end);
  let st = RS.make ~engine ~net ~params ~colluders ~v:"evil" ~t0:0.05 ~eps () in
  RS.launch st;
  ignore (Ssba_sim.Engine.run ~until:(0.05 +. (3.0 *. params.Params.delta_agr)) engine);
  (params, st, !returns)

let test_stretcher_blocks_fast_path_and_aborts () =
  let params, _st, returns = stretch ~n:10 ~fprime:2 in
  check_int "all correct nodes return" 8 (List.length returns);
  List.iter
    (fun (r : Types.return_info) ->
      check_bool "everyone aborts" true (r.Types.outcome = Types.Aborted);
      check_bool "fast path blocked (ran past 4d)" true
        (r.Types.tau_ret -. r.Types.tau_g > 4.0 *. params.Params.d))
    returns

let test_stretcher_linear_in_fprime () =
  let phases fprime =
    let params, _, returns = stretch ~n:16 ~fprime in
    List.fold_left
      (fun acc (r : Types.return_info) ->
        Float.max acc ((r.Types.tau_ret -. r.Types.tau_g) /. params.Params.phi))
      0.0 returns
  in
  let p1 = phases 1 and p2 = phases 2 and p3 = phases 3 in
  check_bool "7 phases at f'=1" true (Float.abs (p1 -. 7.0) < 0.3);
  check_bool "9 phases at f'=2" true (Float.abs (p2 -. 9.0) < 0.3);
  check_bool "11 phases at f'=3" true (Float.abs (p3 -. 11.0) < 0.3)

let test_stretcher_capped_by_u () =
  let params, st, returns = stretch ~n:10 ~fprime:3 in
  ignore st;
  let cap = params.Params.delta_agr in
  List.iter
    (fun (r : Types.return_info) ->
      check_bool "U caps the stretch at Dagr" true
        (r.Types.tau_ret -. r.Types.tau_g <= cap +. params.Params.d))
    returns

let test_stretcher_validations () =
  let engine = Ssba_sim.Engine.create () in
  let net =
    Ssba_net.Network.create ~engine ~n:7 ~delay:(Ssba_net.Delay.fixed 0.0001)
      ~rng:(Ssba_sim.Rng.create 1) ()
  in
  let mk colluders =
    ignore (RS.make ~engine ~net ~params:params7 ~colluders ~v:"x" ~t0:0.0 ~eps:0.0001 ())
  in
  (match mk [] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "empty colluders accepted");
  match mk [ 0; 1; 2 ] (* f = 2 < 3 *) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "over-budget colluders accepted"

let suite =
  [
    case "silent General" test_silent_general_no_returns;
    case "spam cannot forge decisions" test_spam_cannot_forge_decisions;
    case "spam bounded" test_spam_bounded;
    case "mimic: agreement holds" test_mimic_agreement_holds;
    case "two-faced: no divergence" test_two_faced_no_divergence;
    case "equivocators vs correct General" test_equivocators_with_correct_general;
    case "partial General: relay" test_partial_general_relay;
    case "stagger General: safe" test_stagger_general_safe;
    case "flip-flop: safe" test_flip_flop_safe;
    case "stretcher blocks fast path" test_stretcher_blocks_fast_path_and_aborts;
    case "stretcher linear in f'" test_stretcher_linear_in_fprime;
    case "stretcher capped by U" test_stretcher_capped_by_u;
    case "stretcher validations" test_stretcher_validations;
  ]

let test_stretcher_decide_variant () =
  (* the complete_round variant: after the IA-stretch, the last colluder's
     honest round-1 broadcast makes every correct node *decide* the Byzantine
     value through block S — unanimously, past the 4d fast-path window *)
  let n = 10 in
  let params = Params.default n in
  let eps = 0.1 *. params.Params.d in
  let engine = Ssba_sim.Engine.create () in
  let net =
    Ssba_net.Network.create ~engine ~n ~delay:(Ssba_net.Delay.fixed eps)
      ~rng:(Ssba_sim.Rng.create 5) ()
  in
  let colluders = [ 0; 1 ] in
  let returns = ref [] in
  List.init n (fun i -> i)
  |> List.iter (fun id ->
         if not (List.mem id colluders) then begin
           let node =
             Node.create ~id ~params ~clock:Ssba_sim.Clock.perfect ~engine ~net ()
           in
           Node.subscribe node (fun r -> returns := r :: !returns)
         end);
  let st =
    RS.make ~complete_round:true ~engine ~net ~params ~colluders ~v:"evil"
      ~t0:0.05 ~eps ()
  in
  RS.launch st;
  ignore (Ssba_sim.Engine.run ~until:(0.05 +. (3.0 *. params.Params.delta_agr)) engine);
  check_int "all 8 correct nodes return" 8 (List.length !returns);
  List.iter
    (fun (r : Types.return_info) ->
      check_bool "everyone decides the Byzantine value" true
        (r.Types.outcome = Types.Decided "evil");
      let phases = (r.Types.tau_ret -. r.Types.tau_g) /. params.Params.phi in
      check_bool "past the fast path, within S(1)'s deadline" true
        (r.Types.tau_ret -. r.Types.tau_g > 4.0 *. params.Params.d
        && phases <= float_of_int (RS.expected_decide_phase st) +. 0.01))
    !returns

let suite = suite @ [ case "stretcher decide variant" test_stretcher_decide_variant ]
