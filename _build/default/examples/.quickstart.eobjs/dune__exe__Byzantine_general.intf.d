examples/byzantine_general.mli:
