(* Campaign driver.

   Iteration addressing uses a splitmix-style mix of (seed, i) so scenario i
   can be rebuilt without generating scenarios 0..i-1; the whole campaign
   digest is a hash over the per-run result digests in order, which is what
   the determinism acceptance check compares. *)

module Rng = Ssba_sim.Rng

type config = {
  seed : int;
  runs : int;
  time_budget : float option;
  gen : Gen.config;
  oracle : Oracle.config;
  shrink : bool;
  max_shrink_attempts : int;
}

let default_config =
  {
    seed = 1;
    runs = 100;
    time_budget = None;
    gen = Gen.default_config;
    oracle = Oracle.default_config;
    shrink = true;
    max_shrink_attempts = 400;
  }

type failure_case = {
  index : int;
  spec : Spec.t;
  report : Oracle.report;
  shrunk : (Spec.t * Oracle.report * Shrink.stats) option;
}

type summary = {
  executed : int;
  failed : failure_case list;
  corpus_digest : string;
}

(* splitmix64's golden-gamma mix keeps nearby (seed, i) pairs statistically
   far apart; wrap-around multiplication is deterministic in OCaml. *)
let rng_of_iteration ~seed i =
  Rng.create (seed lxor ((i + 1) * 0x9E3779B97F4A7C1))

let spec_of_iteration ~seed ~gen i = Gen.spec (rng_of_iteration ~seed i) gen

(* The campaign digest folds the per-run digests IN ITERATION ORDER — the
   fold must be order-dependent, or a parallel scheduler that completed
   iterations out of order would go unnoticed. Byte-compatible with the
   historical serial implementation (digest ^ "\n" per run, MD5 over the
   concatenation), so every pinned corpus digest stays put. *)
let digest_of_digests arr =
  let buf = Buffer.create ((Array.length arr * 33) + 16) in
  Array.iter
    (fun d ->
      Buffer.add_string buf d;
      Buffer.add_char buf '\n')
    arr;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Failures surface in iteration order with shrinking deferred to a single
   serial pass, so a parallel campaign reports byte-identically to a serial
   one (shrinking is a pure function of the failing spec). *)
let finalize config raw_failures =
  List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) raw_failures
  |> List.map (fun (index, spec, report) ->
         let shrunk =
           if config.shrink then
             Some
               (Shrink.minimize ~config:config.oracle
                  ~max_attempts:config.max_shrink_attempts spec report)
           else None
         in
         { index; spec; report; shrunk })

(* One deterministic engine per domain: workers pull the next iteration
   index from an atomic counter, run it in isolation (every scenario builds
   its own engine/RNG from (seed, i) alone), and write the result digest
   into slot [i]. The index-ordered fold over the slot array then matches
   the serial digest byte for byte, whatever order the slots were filled
   in. With a time budget the digest covers the completed *prefix* —
   stragglers past the first unfinished slot are discarded from the digest
   (budgeted campaigns are not digest-stable in either mode). *)
let run_parallel ?progress ~jobs config =
  let deadline =
    Option.map (fun b -> Unix.gettimeofday () +. b) config.time_budget
  in
  let runs = config.runs in
  let digests = Array.make runs "" in
  let completed = Array.make runs false in
  let next = Atomic.make 0 in
  let failures = Atomic.make [] in
  let progress_mutex = Mutex.create () in
  let worker () =
    let continue = ref true in
    while !continue do
      let i = Atomic.fetch_and_add next 1 in
      if i >= runs then continue := false
      else
        match deadline with
        | Some t when Unix.gettimeofday () > t -> continue := false
        | Some _ | None ->
            let spec = spec_of_iteration ~seed:config.seed ~gen:config.gen i in
            let _, report = Oracle.run ~config:config.oracle spec in
            digests.(i) <- report.Oracle.digest;
            completed.(i) <- true;
            (match progress with
            | Some f ->
                Mutex.lock progress_mutex;
                Fun.protect
                  ~finally:(fun () -> Mutex.unlock progress_mutex)
                  (fun () -> f i spec report)
            | None -> ());
            if Oracle.failed report then begin
              let rec push () =
                let cur = Atomic.get failures in
                if
                  not
                    (Atomic.compare_and_set failures cur
                       ((i, spec, report) :: cur))
                then push ()
              in
              push ()
            end
    done
  in
  let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join helpers;
  let executed = ref 0 in
  while !executed < runs && completed.(!executed) do
    incr executed
  done;
  {
    executed = !executed;
    failed = finalize config (Atomic.get failures);
    corpus_digest = digest_of_digests (Array.sub digests 0 !executed);
  }

let run_serial ?progress config =
  let deadline =
    Option.map (fun b -> Unix.gettimeofday () +. b) config.time_budget
  in
  let digests = Buffer.create 256 in
  let failed = ref [] in
  let executed = ref 0 in
  (try
     for i = 0 to config.runs - 1 do
       (match deadline with
       | Some t when Unix.gettimeofday () > t -> raise Exit
       | Some _ | None -> ());
       let spec = spec_of_iteration ~seed:config.seed ~gen:config.gen i in
       let _, report = Oracle.run ~config:config.oracle spec in
       incr executed;
       Buffer.add_string digests report.Oracle.digest;
       Buffer.add_char digests '\n';
       (match progress with Some f -> f i spec report | None -> ());
       if Oracle.failed report then
         let shrunk =
           if config.shrink then
             Some
               (Shrink.minimize ~config:config.oracle
                  ~max_attempts:config.max_shrink_attempts spec report)
           else None
         in
         failed := { index = i; spec; report; shrunk } :: !failed
     done
   with Exit -> ());
  {
    executed = !executed;
    failed = List.rev !failed;
    corpus_digest = Digest.to_hex (Digest.string (Buffer.contents digests));
  }

let run ?progress ?(jobs = 1) config =
  if jobs <= 1 then run_serial ?progress config
  else run_parallel ?progress ~jobs config
