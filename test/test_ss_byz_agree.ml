(* Integration tests for the full ss-Byz-Agree protocol (paper Figure 1),
   run on the real simulator via the Cluster helper. *)

open Helpers
open Ssba_core
module Engine = Ssba_sim.Engine
module Net = Ssba_net.Network

let propose (c : Cluster.t) ~g ~v ~at =
  Engine.schedule c.Cluster.engine ~at (fun () ->
      match Node.propose (Cluster.node c g) v with
      | Ok () -> ()
      | Error e -> Alcotest.failf "propose refused: %s" (Node.string_of_propose_error e))

let test_validity () =
  let c = Cluster.make ~n:7 () in
  propose c ~g:0 ~v:"v" ~at:0.05;
  Cluster.run c;
  let rets = Cluster.returns c in
  check_int "all 7 nodes return" 7 (List.length rets);
  List.iter
    (fun (r : Types.return_info) ->
      check_bool "decided the General's value" true
        (r.Types.outcome = Types.Decided "v"))
    rets

let test_validity_under_crashes () =
  (* f = 2 crashed from the start: the remaining n - f = 5 still decide *)
  let c = Cluster.make ~n:7 ~skip:[ 5; 6 ] () in
  propose c ~g:0 ~v:"v" ~at:0.05;
  Cluster.run c;
  check_int "5 correct nodes decide" 5 (List.length (Cluster.decided_values c))

let test_no_progress_beyond_f_crashes () =
  (* with f + 1 = 3 crashes the support quorum n - f = 5 is unreachable:
     nobody can decide (and nobody returns at all) *)
  let c = Cluster.make ~n:7 ~skip:[ 4; 5; 6 ] () in
  propose c ~g:0 ~v:"v" ~at:0.05;
  Cluster.run c;
  check_int "no returns" 0 (List.length (Cluster.returns c))

let test_fast_path_round_zero () =
  (* fixed tiny delay: everyone decides via block R, within ~4 hops *)
  let c = Cluster.make ~n:7 ~delay:(`Fixed 0.0001) ~clock:`Perfect () in
  propose c ~g:0 ~v:"v" ~at:0.05;
  Cluster.run c;
  List.iter
    (fun (r : Types.return_info) ->
      check_bool "decision well inside 4d of the anchor" true
        (r.Types.tau_ret -. r.Types.tau_g <= 4.0 *. c.Cluster.params.Params.d))
    (Cluster.returns c);
  check_int "all decide" 7 (List.length (Cluster.decided_values c))

let test_decision_skew_bound () =
  let c = Cluster.make ~n:10 ~seed:5 () in
  propose c ~g:3 ~v:"v" ~at:0.05;
  Cluster.run c;
  let rts = List.map (fun (r : Types.return_info) -> r.Types.rt_ret) (Cluster.returns c) in
  let span = List.fold_left Float.max (List.hd rts) rts -. List.fold_left Float.min (List.hd rts) rts in
  check_bool "decision skew <= 3d (Timeliness 1a)" true
    (span <= 3.0 *. c.Cluster.params.Params.d +. 1e-9)

let test_anchor_before_return () =
  let c = Cluster.make ~n:7 ~seed:9 () in
  propose c ~g:1 ~v:"v" ~at:0.05;
  Cluster.run c;
  List.iter
    (fun (r : Types.return_info) ->
      check_bool "tau_g <= tau_ret (Timeliness 1d)" true (r.Types.tau_g <= r.Types.tau_ret);
      check_bool "running time <= Dagr" true
        (r.Types.tau_ret -. r.Types.tau_g <= c.Cluster.params.Params.delta_agr))
    (Cluster.returns c)

let test_instance_resets_after_agreement () =
  let c = Cluster.make ~n:7 () in
  propose c ~g:0 ~v:"first" ~at:0.05;
  (* beyond Delta_0 so IG1 allows, and instance must be Idle again *)
  propose c ~g:0 ~v:"second" ~at:(0.05 +. (2.0 *. c.Cluster.params.Params.delta_0));
  Cluster.run c;
  let decided = Cluster.decided_values c in
  check_int "both agreements decided by all" 14 (List.length decided);
  check_int "7 decided first" 7
    (List.length (List.filter (String.equal "first") decided));
  check_int "7 decided second" 7
    (List.length (List.filter (String.equal "second") decided))

let test_concurrent_generals () =
  (* two different Generals initiate close together: separate instances,
     both decide *)
  let c = Cluster.make ~n:10 () in
  propose c ~g:0 ~v:"a" ~at:0.05;
  propose c ~g:1 ~v:"b" ~at:0.0505;
  Cluster.run c;
  let by_value v =
    List.length (List.filter (String.equal v) (Cluster.decided_values c))
  in
  check_int "all decide G=0's value" 10 (by_value "a");
  check_int "all decide G=1's value" 10 (by_value "b")

let test_matching_block_s () =
  (* Direct unit test of the round-matching used by block S: a Byzantine
     broadcaster appearing in two rounds must not satisfy r = 2 alone, but a
     system of distinct representatives must. Exercised via the primitive's
     accept callback plumbing on a fake context. *)
  let params = Params.default 7 in
  let fake, ctx = Fake.make params in
  ignore fake;
  let agree = Ss_byz_agree.create ~ctx ~g:6 () in
  (* drive the instance by hand: anchor via the Initiator-Accept of value m *)
  let ia = Ss_byz_agree.initiator_accept agree in
  List.iter
    (fun s -> Initiator_accept.handle_message ia ~kind:Types.Support ~sender:s ~v:"m")
    [ 0; 1; 2; 3; 4 ];
  Fake.advance fake (5.0 *. params.Params.d);
  List.iter
    (fun s -> Initiator_accept.handle_message ia ~kind:Types.Approve ~sender:s ~v:"m")
    [ 0; 1; 2; 3; 4 ];
  Fake.advance fake (0.2 *. params.Params.d);
  List.iter
    (fun s -> Initiator_accept.handle_message ia ~kind:Types.Ready ~sender:s ~v:"m")
    [ 0; 1; 2; 3; 4 ];
  (* the anchor is ~7d in the past now, so block R (<= 4d) must NOT fire *)
  check_bool "still running (R missed)" true
    (Ss_byz_agree.state agree = Ss_byz_agree.Running);
  let mb = Ss_byz_agree.msgd_broadcast agree in
  let accept_round ~p ~k =
    (* block Z is untimed, so echo' quorums make (p, m, k) accepted even
       past its X deadline *)
    List.iter
      (fun s -> Msgd_broadcast.handle_message mb ~sender:s ~kind:Types.Echo2 ~p ~v:"m" ~k)
      [ 0; 1; 2; 3; 4 ]
  in
  (* move past S(1)'s deadline (tau_g + 3 Phi) so a round-1 accept alone can
     no longer decide; the anchor is ~2d before the supports *)
  Fake.advance fake (3.2 *. params.Params.phi);
  accept_round ~p:3 ~k:1;
  check_bool "round-1 accept past its deadline does not decide" true
    (Ss_byz_agree.state agree = Ss_byz_agree.Running);
  (* Byzantine node 3 also shows up in round 2: rounds {1,2} cannot be
     matched to distinct broadcasters *)
  accept_round ~p:3 ~k:2;
  check_bool "single node in two rounds does not satisfy r=2" true
    (Ss_byz_agree.state agree = Ss_byz_agree.Running);
  (* a distinct node for round 2 completes the system of representatives *)
  accept_round ~p:4 ~k:2;
  (match Ss_byz_agree.state agree with
  | Ss_byz_agree.Returned (Types.Decided v, _) -> check_str "decided m" "m" v
  | _ -> Alcotest.fail "expected a decision through block S")

let test_termination_u_block () =
  (* anchor with no broadcasts at all: block T or U must abort within
     Delta_agr *)
  let params = Params.default 7 in
  let fake, ctx = Fake.make params in
  let agree = Ss_byz_agree.create ~ctx ~g:6 () in
  let returned = ref None in
  Ss_byz_agree.set_on_return agree (fun outcome ~tau_g:_ ~tau_ret ->
      returned := Some (outcome, tau_ret));
  let ia = Ss_byz_agree.initiator_accept agree in
  List.iter
    (fun s -> Initiator_accept.handle_message ia ~kind:Types.Support ~sender:s ~v:"m")
    [ 0; 1; 2; 3; 4 ];
  Fake.advance fake (5.0 *. params.Params.d);
  List.iter
    (fun s -> Initiator_accept.handle_message ia ~kind:Types.Approve ~sender:s ~v:"m")
    [ 0; 1; 2; 3; 4 ];
  List.iter
    (fun s -> Initiator_accept.handle_message ia ~kind:Types.Ready ~sender:s ~v:"m")
    [ 0; 1; 2; 3; 4 ];
  check_bool "running" true (Ss_byz_agree.state agree = Ss_byz_agree.Running);
  let anchored_at = fake.Fake.now in
  Fake.advance fake params.Params.delta_agr;
  (match !returned with
  | Some (Types.Aborted, tau_ret) ->
      check_bool "aborted within Dagr of the anchor" true
        (tau_ret -. anchored_at <= params.Params.delta_agr)
  | Some (Types.Decided _, _) -> Alcotest.fail "decided out of nowhere"
  | None -> Alcotest.fail "T/U blocks did not abort");
  (* and 3d later the instance has reset to Idle, ready for reuse *)
  check_bool "instance reset after the return" true
    (Ss_byz_agree.state agree = Ss_byz_agree.Idle)

let test_cleanup_repairs_corrupt_running_state () =
  let params = Params.default 7 in
  let fake, ctx = Fake.make params in
  let agree = Ss_byz_agree.create ~ctx ~g:3 () in
  let rng = Ssba_sim.Rng.create 17 in
  Ss_byz_agree.scramble rng ~values:[ "x"; "y" ] agree;
  (* periodic cleanup over a stabilization period must drive the instance
     back to Idle, whatever the scramble produced *)
  for _ = 1 to int_of_float (params.Params.delta_stb /. params.Params.d) do
    Fake.advance fake params.Params.d;
    Ss_byz_agree.cleanup agree
  done;
  check_bool "instance repaired to Idle" true (Ss_byz_agree.state agree = Ss_byz_agree.Idle)

let suite =
  [
    case "validity" test_validity;
    case "validity under f crashes" test_validity_under_crashes;
    case "no progress beyond f crashes" test_no_progress_beyond_f_crashes;
    case "fast path (block R)" test_fast_path_round_zero;
    case "decision skew" test_decision_skew_bound;
    case "anchor/running-time bounds" test_anchor_before_return;
    case "instance resets (recurrent)" test_instance_resets_after_agreement;
    case "concurrent Generals" test_concurrent_generals;
    case "block S round matching" test_matching_block_s;
    case "block U aborts" test_termination_u_block;
    case "cleanup repairs scrambled state" test_cleanup_repairs_corrupt_running_state;
  ]
