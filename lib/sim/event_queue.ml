(* Monomorphic event queue: the engine's innermost data structure.

   A binary min-heap over (at, seq) keys held in parallel arrays: a flat
   [float array] for times, an [int array] for sequence numbers and a closure
   array for the scheduled thunks. Keeping the keys out of a record means the
   hot loop does raw float/int comparisons on unboxed values — no closure
   indirection, no polymorphic [compare] (a C call per comparison), and no
   per-event allocation: [push] stores three fields and [pop_run] returns the
   closure that already existed.

   Ordering is (at, seq) lexicographic, so events at equal times pop in
   scheduling order — the engine's determinism contract. Both sifts move a
   "hole" instead of swapping, storing each displaced slot once.

   Vacated closure slots are overwritten with [nop] so drained events are not
   retained; the float/int arrays need no such care. *)

let nop () = ()

type t = {
  mutable ats : float array;  (* flat float array: unboxed time keys *)
  mutable seqs : int array;
  mutable runs : (unit -> unit) array;
  mutable size : int;
}

let create ?(capacity = 64) () =
  let capacity = max capacity 1 in
  {
    ats = Array.make capacity 0.0;
    seqs = Array.make capacity 0;
    runs = Array.make capacity nop;
    size = 0;
  }

let size t = t.size
let is_empty t = t.size = 0
let capacity t = Array.length t.ats

let grow t =
  let cap = 2 * Array.length t.ats in
  let ats = Array.make cap 0.0 in
  let seqs = Array.make cap 0 in
  let runs = Array.make cap nop in
  Array.blit t.ats 0 ats 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  Array.blit t.runs 0 runs 0 t.size;
  t.ats <- ats;
  t.seqs <- seqs;
  t.runs <- runs

(* All unsafe accesses below are at indices < t.size <= Array.length t.ats,
   with the three arrays always of equal length. *)

let push t ~at ~seq run =
  if t.size = Array.length t.ats then grow t;
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pat = Array.unsafe_get t.ats parent in
    if pat > at || (pat = at && Array.unsafe_get t.seqs parent > seq) then begin
      Array.unsafe_set t.ats !i pat;
      Array.unsafe_set t.seqs !i (Array.unsafe_get t.seqs parent);
      Array.unsafe_set t.runs !i (Array.unsafe_get t.runs parent);
      i := parent
    end
    else continue := false
  done;
  Array.unsafe_set t.ats !i at;
  Array.unsafe_set t.seqs !i seq;
  Array.unsafe_set t.runs !i run

let min_at t =
  if t.size = 0 then invalid_arg "Event_queue.min_at: empty";
  t.ats.(0)

let pop_run t =
  if t.size = 0 then invalid_arg "Event_queue.pop_run: empty";
  let top = t.runs.(0) in
  let last = t.size - 1 in
  t.size <- last;
  if last = 0 then t.runs.(0) <- nop
  else begin
    (* Re-insert the last element through the hole left at the root. *)
    let at = Array.unsafe_get t.ats last in
    let seq = Array.unsafe_get t.seqs last in
    let run = Array.unsafe_get t.runs last in
    Array.unsafe_set t.runs last nop;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= last then continue := false
      else begin
        let r = l + 1 in
        let c =
          if r < last then begin
            let lat = Array.unsafe_get t.ats l and rat = Array.unsafe_get t.ats r in
            if
              rat < lat
              || (rat = lat && Array.unsafe_get t.seqs r < Array.unsafe_get t.seqs l)
            then r
            else l
          end
          else l
        in
        let cat = Array.unsafe_get t.ats c in
        if cat < at || (cat = at && Array.unsafe_get t.seqs c < seq) then begin
          Array.unsafe_set t.ats !i cat;
          Array.unsafe_set t.seqs !i (Array.unsafe_get t.seqs c);
          Array.unsafe_set t.runs !i (Array.unsafe_get t.runs c);
          i := c
        end
        else continue := false
      end
    done;
    Array.unsafe_set t.ats !i at;
    Array.unsafe_set t.seqs !i seq;
    Array.unsafe_set t.runs !i run
  end;
  top

let clear t =
  Array.fill t.runs 0 t.size nop;
  t.size <- 0
