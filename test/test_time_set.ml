(* Tests for the sorted time-stamp set backing last(G,m).

   The model test replays random add/retain/clear sequences against a plain
   float-list reference whose queries are the old list-based semantics:
   [defined_at] must equal "exists s <= at with at - s <= expiry" and
   [retain_range] must keep exactly the stamps in [lo, hi]. *)

open Helpers
module T = Ssba_core.Time_set

let test_basics () =
  let s = T.create () in
  check_bool "empty" true (T.is_empty s);
  T.add s 2.0;
  T.add s 1.0;
  T.add s 3.0;
  check_int "size" 3 (T.size s);
  check_bool "sorted" true (T.to_list s = [ 1.0; 2.0; 3.0 ]);
  T.add s 2.0;
  check_int "duplicates dropped" 3 (T.size s)

let test_defined_at () =
  let s = T.create () in
  T.add s 10.0;
  check_bool "exact stamp" true (T.defined_at s ~at:10.0 ~expiry:1.0);
  check_bool "within expiry" true (T.defined_at s ~at:10.5 ~expiry:1.0);
  check_bool "expired" false (T.defined_at s ~at:11.5 ~expiry:1.0);
  check_bool "before the stamp" false (T.defined_at s ~at:9.9 ~expiry:1.0)

let test_retain_range () =
  let s = T.create () in
  List.iter (T.add s) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  T.retain_range s ~lo:2.0 ~hi:4.0;
  check_bool "inclusive bounds kept" true (T.to_list s = [ 2.0; 3.0; 4.0 ]);
  T.retain_range s ~lo:10.0 ~hi:20.0;
  check_bool "disjoint range empties" true (T.is_empty s)

(* Boundary pin for the predecessor-witness search (companion to the block-R
   gate pins in test_ss_byz_agree): [defined_at] is an inclusive <= at the
   expiry boundary, the witness must be the LARGEST stamp <= at, and a stamp
   exactly at [at] is its own witness. Block K's freshness query (was
   last(G,m) defined d ago?) rides on these exact semantics. *)
let test_predecessor_witness_boundary () =
  let s = T.create () in
  T.add s 10.0;
  T.add s 12.0;
  check_bool "exactly at the expiry boundary counts (<=, not <)" true
    (T.defined_at s ~at:11.0 ~expiry:1.0);
  check_bool "one ulp past the boundary does not" false
    (T.defined_at s ~at:(11.0 +. 0x1p-20) ~expiry:1.0);
  check_bool "a stamp exactly at [at] is a witness even with zero expiry" true
    (T.defined_at s ~at:12.0 ~expiry:0.0);
  check_bool "a stamp later than [at] is never a witness" false
    (T.defined_at s ~at:11.5 ~expiry:0.25);
  (* the witness is the predecessor: 12.0 (not 10.0) answers at = 12.25 *)
  check_bool "largest stamp <= at is the witness" true
    (T.defined_at s ~at:12.25 ~expiry:0.25)

let test_clear () =
  let s = T.create () in
  T.add s 1.0;
  T.clear s;
  check_bool "cleared" true (T.is_empty s);
  T.add s 2.0;
  check_bool "usable after clear" true (T.to_list s = [ 2.0 ])

(* --- model test vs a float-list reference --- *)

type op = Add of float | Retain of float * float | Clear

let gen_ops =
  QCheck.Gen.(
    list
      (frequency
         [
           (5, map (fun i -> Add (float_of_int i /. 2.0)) (int_bound 12));
           ( 2,
             map2
               (fun a b -> Retain (float_of_int a /. 2.0, float_of_int b /. 2.0))
               (int_bound 12) (int_bound 12) );
           (1, return Clear);
         ]))

let print_ops ops =
  String.concat ";"
    (List.map
       (function
         | Add x -> Printf.sprintf "add %.1f" x
         | Retain (lo, hi) -> Printf.sprintf "retain [%.1f,%.1f]" lo hi
         | Clear -> "clear")
       ops)

let arb_ops = QCheck.make ~print:print_ops gen_ops

let prop_model =
  QCheck.Test.make ~name:"time set matches float-list model" ~count:500 arb_ops
    (fun ops ->
      let s = T.create () in
      let model = ref [] in
      (* unsorted, duplicates possible *)
      List.iter
        (fun op ->
          match op with
          | Add x ->
              T.add s x;
              model := x :: !model
          | Retain (lo, hi) ->
              T.retain_range s ~lo ~hi;
              model := List.filter (fun x -> lo <= x && x <= hi) !model
          | Clear ->
              T.clear s;
              model := [])
        ops;
      let ats = List.init 25 (fun i -> float_of_int i /. 2.0) in
      T.to_list s = List.sort_uniq compare !model
      && List.for_all
           (fun at ->
             List.for_all
               (fun expiry ->
                 T.defined_at s ~at ~expiry
                 = List.exists (fun x -> x <= at && at -. x <= expiry) !model)
               [ 0.0; 0.5; 2.0; 100.0 ])
           ats)

let suite =
  [
    case "basics" test_basics;
    case "defined_at" test_defined_at;
    case "retain_range" test_retain_range;
    case "predecessor-witness boundary" test_predecessor_witness_boundary;
    case "clear" test_clear;
    Helpers.qcheck prop_model;
  ]
