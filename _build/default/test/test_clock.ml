(* Tests for drifting clocks. *)

open Helpers
module Clock = Ssba_sim.Clock
module Rng = Ssba_sim.Rng

let test_perfect () =
  check_float "perfect reads real time" 3.25 (Clock.read Clock.perfect ~now:3.25);
  check_float "rate 1" 1.0 (Clock.rate Clock.perfect);
  check_float "offset 0" 0.0 (Clock.offset Clock.perfect)

let test_linear () =
  let c = Clock.create ~offset:10.0 ~rate:2.0 in
  check_float "read" 16.0 (Clock.read c ~now:3.0);
  check_float "local duration of real" 4.0 (Clock.local_of_real_duration c 2.0);
  check_float "real duration of local" 2.0 (Clock.real_of_local_duration c 4.0)

let test_inverse () =
  let c = Clock.create ~offset:(-5.0) ~rate:1.5 in
  let tau = Clock.read c ~now:7.0 in
  check_float "real_time_of_reading inverts read" 7.0
    (Clock.real_time_of_reading c tau)

let test_negative_offset () =
  let c = Clock.create ~offset:(-100.0) ~rate:1.0 in
  check_float "negative local time is fine" (-98.0) (Clock.read c ~now:2.0)

let test_bad_rate () =
  Alcotest.check_raises "zero rate rejected"
    (Invalid_argument "Clock.create: rate must be positive") (fun () ->
      ignore (Clock.create ~offset:0.0 ~rate:0.0))

let test_random_within_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 100 do
    let c = Clock.random rng ~rho:0.01 ~max_offset:5.0 in
    check_bool "rate within 1 +- rho" true
      (Clock.rate c >= 0.99 && Clock.rate c <= 1.01);
    check_bool "offset within +- 5" true
      (Clock.offset c >= -5.0 && Clock.offset c <= 5.0)
  done

let test_drift_bound_property () =
  (* Definition 1: (1 - rho)(v - u) <= tau(v) - tau(u) <= (1 + rho)(v - u). *)
  let rng = Rng.create 8 in
  for _ = 1 to 50 do
    let rho = 0.001 in
    let c = Clock.random rng ~rho ~max_offset:100.0 in
    let u = Rng.float rng 50.0 in
    let v = u +. Rng.float rng 50.0 in
    let dl = Clock.read c ~now:v -. Clock.read c ~now:u in
    check_bool "drift bound holds" true
      (dl >= (1.0 -. rho) *. (v -. u) -. 1e-9
      && dl <= (1.0 +. rho) *. (v -. u) +. 1e-9)
  done

(* qcheck: round trips between local and real durations. *)
let prop_roundtrip =
  QCheck.Test.make ~name:"clock duration round trip" ~count:300
    QCheck.(triple (float_range (-10.0) 10.0) (float_range 0.5 2.0) (float_range 0.0 100.0))
    (fun (offset, rate, dl) ->
      let c = Clock.create ~offset ~rate in
      Float.abs (Clock.local_of_real_duration c (Clock.real_of_local_duration c dl) -. dl)
      < 1e-6)

let prop_reading_roundtrip =
  QCheck.Test.make ~name:"clock reading round trip" ~count:300
    QCheck.(triple (float_range (-10.0) 10.0) (float_range 0.5 2.0) (float_range 0.0 1000.0))
    (fun (offset, rate, now) ->
      let c = Clock.create ~offset ~rate in
      Float.abs (Clock.real_time_of_reading c (Clock.read c ~now) -. now) < 1e-6)

let suite =
  [
    case "perfect" test_perfect;
    case "linear" test_linear;
    case "inverse" test_inverse;
    case "negative offset" test_negative_offset;
    case "bad rate" test_bad_rate;
    case "random within bounds" test_random_within_bounds;
    case "drift bound (Definition 1)" test_drift_bound_property;
    Helpers.qcheck prop_roundtrip;
    Helpers.qcheck prop_reading_roundtrip;
  ]
