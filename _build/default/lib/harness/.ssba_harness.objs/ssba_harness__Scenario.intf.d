lib/harness/scenario.mli: Ssba_adversary Ssba_core Ssba_net
