(* Tests for the engine's monomorphic event queue.

   The queue is the engine's determinism keystone: events pop in ascending
   (at, seq) order, so two events at the same virtual time run in schedule
   (FIFO) order. The model test drives a random push/pop/clear sequence
   against a sorted-list reference and checks both the pop order and the
   closures' execution order. *)

open Helpers
module Q = Ssba_sim.Event_queue

let test_empty () =
  let q = Q.create () in
  check_bool "is_empty" true (Q.is_empty q);
  check_int "size" 0 (Q.size q);
  (match Q.min_at q with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "min_at on empty must raise");
  match Q.pop_run q with
  | exception Invalid_argument _ -> ()
  | (_ : unit -> unit) -> Alcotest.fail "pop_run on empty must raise"

let drain q =
  let acc = ref [] in
  while not (Q.is_empty q) do
    let at = Q.min_at q in
    (Q.pop_run q) ();
    acc := at :: !acc
  done;
  List.rev !acc

let test_pop_ascending () =
  let q = Q.create () in
  List.iteri
    (fun seq at -> Q.push q ~at ~seq (fun () -> ()))
    [ 3.0; 1.0; 2.0; 0.5; 1.0 ];
  check_bool "ascending at" true (drain q = [ 0.5; 1.0; 1.0; 2.0; 3.0 ])

let test_fifo_for_equal_at () =
  let q = Q.create () in
  let order = ref [] in
  for seq = 0 to 9 do
    Q.push q ~at:1.0 ~seq (fun () -> order := seq :: !order)
  done;
  ignore (drain q);
  check_bool "equal-at events run in push (seq) order" true
    (List.rev !order = List.init 10 Fun.id)

let test_growth () =
  let q = Q.create ~capacity:1 () in
  for seq = 1000 downto 1 do
    Q.push q ~at:(float_of_int seq) ~seq (fun () -> ())
  done;
  check_int "size after growth" 1000 (Q.size q);
  check_float "min correct" 1.0 (Q.min_at q)

let test_clear_and_reuse () =
  let q = Q.create () in
  let fired = ref false in
  Q.push q ~at:1.0 ~seq:0 (fun () -> fired := true);
  Q.push q ~at:2.0 ~seq:1 (fun () -> fired := true);
  Q.clear q;
  check_bool "cleared" true (Q.is_empty q);
  Q.push q ~at:5.0 ~seq:2 (fun () -> ());
  check_float "usable after clear" 5.0 (Q.min_at q);
  (Q.pop_run q) ();
  check_bool "cleared closures never run" false !fired

(* --- model test: random ops vs a sorted-list reference --- *)

type op = Push of float | Pop | Clear

let gen_ops =
  QCheck.Gen.(
    list
      (frequency
         [
           (* a small grid of times forces plenty of equal-at ties *)
           (5, map (fun i -> Push (float_of_int i /. 4.0)) (int_bound 8));
           (3, return Pop);
           (1, return Clear);
         ]))

let print_ops ops =
  String.concat ";"
    (List.map
       (function
         | Push at -> Printf.sprintf "push %.2f" at
         | Pop -> "pop"
         | Clear -> "clear")
       ops)

let arb_ops = QCheck.make ~print:print_ops gen_ops

(* (at, seq) lexicographic, the queue's documented order. *)
let cmp (a1, s1) (a2, s2) =
  if a1 < a2 then -1 else if a1 > a2 then 1 else Stdlib.Int.compare s1 s2

let prop_model =
  QCheck.Test.make ~name:"event queue matches sorted-list model" ~count:500
    arb_ops (fun ops ->
      let q = Q.create ~capacity:1 () in
      let seq = ref 0 in
      let model = ref [] in
      (* sorted by cmp *)
      let ran = ref [] in
      let expect = ref [] in
      let step op =
        match op with
        | Push at ->
            let s = !seq in
            incr seq;
            Q.push q ~at ~seq:s (fun () -> ran := s :: !ran);
            model := List.merge cmp [ (at, s) ] !model;
            true
        | Pop -> (
            match !model with
            | [] -> Q.is_empty q
            | (at, s) :: rest ->
                model := rest;
                expect := s :: !expect;
                Q.min_at q = at
                &&
                ((Q.pop_run q) ();
                 true))
        | Clear ->
            Q.clear q;
            model := [];
            true
      in
      List.for_all step ops
      && Q.size q = List.length !model
      &&
      ((* drain what's left and compare the full execution order *)
       List.iter
         (fun (_, s) ->
           expect := s :: !expect;
           (Q.pop_run q) ())
         !model;
       !ran = !expect && Q.is_empty q))

let suite =
  [
    case "empty queue" test_empty;
    case "pop ascending" test_pop_ascending;
    case "FIFO for equal at" test_fifo_for_equal_at;
    case "growth" test_growth;
    case "clear and reuse" test_clear_and_reuse;
    Helpers.qcheck prop_model;
  ]
