(** Minimal dependency-free JSON encoder/decoder, sufficient for the
    observability layer's JSONL export and its round-trip tests. All numbers
    are floats; NaN/infinity encode as [null]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
val to_buffer : Buffer.t -> t -> unit

(** Parse one JSON value; raises {!Parse_error} on malformed input or
    trailing garbage. *)
val of_string : string -> t

(** [member name (Obj fields)] is the value of field [name], if any;
    [None] on non-objects. *)
val member : string -> t -> t option

val to_float_opt : t -> float option
val to_string_opt : t -> string option

(** [to_int_opt] succeeds only on integral numbers. *)
val to_int_opt : t -> int option
