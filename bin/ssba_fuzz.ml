(* ssba-fuzz: deterministic scenario fuzzing with shrinking and replay.

     ssba-fuzz --seed 42 --runs 500                 # a campaign
     ssba-fuzz --seed 42 --runs 500 --out corpus/   # save failures as JSON
     ssba-fuzz --replay corpus/fail-17.min.json     # re-judge one spec
     ssba-fuzz --seed 42 --iteration 17             # rebuild scenario 17

   A campaign without --time-budget is a pure function of its flags: the
   printed corpus digest is identical across runs, so CI can pin it. Exit
   status 0 means every oracle passed; 1 means at least one failure (each is
   shrunk to a locally-minimal scenario and, with --out, saved both raw and
   minimized). *)

open Cmdliner
module F = Ssba_fuzz

let pp_failure_case ~verbose (fc : F.Campaign.failure_case) =
  Fmt.pr "@.FAILURE at iteration %d:@.  %a@." fc.F.Campaign.index F.Spec.pp
    fc.F.Campaign.spec;
  List.iter
    (fun f -> Fmt.pr "  %a@." F.Oracle.pp_failure f)
    fc.F.Campaign.report.F.Oracle.failures;
  match fc.F.Campaign.shrunk with
  | None -> ()
  | Some (spec, report, stats) ->
      Fmt.pr "  shrunk (%d attempts, %d steps) to:@.    %a@."
        stats.F.Shrink.attempts stats.F.Shrink.accepted F.Spec.pp spec;
      if verbose then
        List.iter
          (fun f -> Fmt.pr "    %a@." F.Oracle.pp_failure f)
          report.F.Oracle.failures

let save_failure ~dir (fc : F.Campaign.failure_case) =
  let path name = Filename.concat dir name in
  let base = Printf.sprintf "fail-%d" fc.F.Campaign.index in
  F.Spec.save (path (base ^ ".json")) fc.F.Campaign.spec;
  (match fc.F.Campaign.shrunk with
  | Some (spec, _, _) -> F.Spec.save (path (base ^ ".min.json")) spec
  | None -> ());
  Fmt.pr "  saved %s@." (path (base ^ ".json"))

let replay path =
  match F.Spec.load path with
  | Error e ->
      Fmt.epr "cannot load %s: %s@." path e;
      2
  | Ok spec -> (
      Fmt.pr "replaying %a@." F.Spec.pp spec;
      let _, report = F.Oracle.run spec in
      Fmt.pr "result digest: %s@." report.F.Oracle.digest;
      match report.F.Oracle.failures with
      | [] ->
          Fmt.pr "all oracles passed@.";
          0
      | fs ->
          List.iter (fun f -> Fmt.pr "%a@." F.Oracle.pp_failure f) fs;
          1)

let rebuild ~gen seed iteration =
  let spec = F.Campaign.spec_of_iteration ~seed ~gen iteration in
  Fmt.pr "scenario %d of seed %d:@.%a@." iteration seed F.Spec.pp spec;
  Fmt.pr "%s@." (Ssba_sim.Json.to_string (F.Spec.to_json spec));
  let _, report = F.Oracle.run spec in
  Fmt.pr "result digest: %s@." report.F.Oracle.digest;
  List.iter (fun f -> Fmt.pr "%a@." F.Oracle.pp_failure f) report.F.Oracle.failures;
  if report.F.Oracle.failures = [] then 0 else 1

let fuzz seed runs time_budget replay_file iteration out max_n max_disruptions
    lossy chaos overload r_slack edge_delays no_shrink verbose jobs =
  let base_gen =
    if overload then F.Gen.overload_config
    else if chaos then F.Gen.chaos_config
    else if lossy then F.Gen.lossy_config
    else F.Gen.default_config
  in
  match (replay_file, iteration) with
  | Some path, _ -> replay path
  | None, Some i -> rebuild ~gen:base_gen seed i
  | None, None ->
      let config =
        {
          F.Campaign.default_config with
          F.Campaign.seed;
          runs;
          time_budget;
          shrink = not no_shrink;
          gen =
            {
              base_gen with
              F.Gen.max_n =
                (* the churn and overload tiers keep their own (smaller)
                   cluster caps *)
                (if chaos || overload then min (max max_n 4) base_gen.F.Gen.max_n
                 else max max_n 4);
              max_disruptions =
                (* likewise the overload tier's one-churn-group cap *)
                (if chaos || overload then
                   min max_disruptions base_gen.F.Gen.max_disruptions
                 else max_disruptions);
              disruptions = base_gen.F.Gen.disruptions && max_disruptions > 0;
              r_slack;
              edge_delays;
            };
        }
      in
      (match out with
      | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
      | Some _ | None -> ());
      let progress =
        if verbose then
          Some
            (fun i spec (r : F.Oracle.report) ->
              Fmt.pr "run %4d %-24s %s@." i spec.F.Spec.name
                (if F.Oracle.failed r then "FAIL" else "ok"))
        else None
      in
      let summary = F.Campaign.run ?progress ~jobs config in
      List.iter
        (fun fc ->
          pp_failure_case ~verbose fc;
          match out with Some dir -> save_failure ~dir fc | None -> ())
        summary.F.Campaign.failed;
      Fmt.pr "executed %d/%d scenarios, %d failure(s)@."
        summary.F.Campaign.executed runs
        (List.length summary.F.Campaign.failed);
      Fmt.pr "corpus digest: %s@." summary.F.Campaign.corpus_digest;
      if summary.F.Campaign.failed = [] then 0 else 1

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Campaign seed.")

let runs_arg =
  Arg.(value & opt int 100 & info [ "runs" ] ~doc:"Number of scenarios to generate.")

let time_budget_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "time-budget" ] ~docv:"SEC"
        ~doc:
          "Stop after $(docv) wall-clock seconds (determinism of the corpus \
           digest is only guaranteed without a budget).")

let replay_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "replay" ] ~docv:"FILE"
        ~doc:"Replay one saved spec instead of fuzzing; exit 1 if it still fails.")

let iteration_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "iteration" ] ~docv:"I"
        ~doc:
          "Rebuild and judge scenario $(docv) of --seed alone (no corpus \
           needed: a failure report names its iteration).")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"DIR"
        ~doc:"Save failing specs (raw and shrunk) as JSON replay files into $(docv).")

let max_n_arg =
  Arg.(value & opt int 10 & info [ "max-n" ] ~doc:"Largest cluster size to generate.")

let max_disruptions_arg =
  Arg.(
    value & opt int 2
    & info [ "max-disruptions" ]
        ~doc:
          "Max crash/loss/partition/scramble groups per scenario (0 disables \
           environment events).")

let lossy_arg =
  Arg.(
    value & flag
    & info [ "lossy" ]
        ~doc:
          "Fuzz over persistently lossy/duplicating/reordering links with \
           the reliable transport enabled (Gen.lossy_config); transient \
           disruptions are off so Validity/Termination are checked on every \
           scenario.")

let chaos_arg =
  Arg.(
    value & flag
    & info [ "chaos" ]
        ~doc:
          "Fuzz continuous-churn schedules (Gen.chaos_config): every \
           scenario is a sequence of disruption episodes — scrambles, \
           crash/recover waves, delay surge/restore cycles, Byzantine \
           rejoins — each probed inside and after its $(b,Delta_stb) \
           recovery window, with per-episode recovery times measured and \
           bounded by the oracle.")

let overload_arg =
  Arg.(
    value & flag
    & info [ "overload" ]
        ~doc:
          "Fuzz the recurrent-agreement service under open-loop overload \
           (Gen.overload_config): arrival bursts against the \
           admission-controlled session tables, over a lossy transport with \
           optional churn. The oracle additionally asserts the bounded \
           retry queue, shed-only-under-pressure and the eventual drain \
           back out of degraded mode.")

let r_slack_arg =
  let module P = Ssba_core.Params in
  let rs_conv =
    Arg.conv
      ( (fun s ->
          match P.r_slack_of_string s with
          | Some r -> Ok r
          | None -> Error (`Msg (Fmt.str "expected legacy|widen|general, got %S" s))),
        fun ppf r -> Fmt.string ppf (P.r_slack_to_string r) )
  in
  Arg.(
    value & opt rs_conv P.default_r_slack
    & info [ "r-slack" ] ~docv:"legacy|widen|general"
        ~doc:
          "Block-R gate variant every generated scenario runs under. \
           $(b,legacy) together with --edge-delays off reproduces the \
           pre-fix corpus digests.")

let edge_delays_arg =
  let on_off =
    Arg.conv
      ( (function
        | "on" -> Ok true
        | "off" -> Ok false
        | s -> Error (`Msg (Fmt.str "expected on|off, got %S" s))),
        fun ppf b -> Fmt.string ppf (if b then "on" else "off") )
  in
  Arg.(
    value & opt on_off true
    & info [ "edge-delays" ] ~docv:"on|off"
        ~doc:
          "Sample boundary-straddling delay lattices (Edge model) and the \
           gate-edge adversary; $(b,off) restores the pre-edge generator \
           streams byte for byte.")

let no_shrink_arg =
  Arg.(value & flag & info [ "no-shrink" ] ~doc:"Report failures unminimized.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Run scenarios on $(docv) domains (cores). Every iteration is a \
           pure function of (seed, i) and the corpus digest folds results \
           in iteration order, so the summary is byte-identical to --jobs 1.")

let verbose_arg =
  Arg.(value & flag & info [ "verbose" ] ~doc:"Print every scenario verdict.")

let cmd =
  let doc = "deterministic scenario fuzzing for ss-Byz-Agree" in
  Cmd.v
    (Cmd.info "ssba-fuzz" ~doc)
    Term.(
      const fuzz $ seed_arg $ runs_arg $ time_budget_arg $ replay_arg
      $ iteration_arg $ out_arg $ max_n_arg $ max_disruptions_arg $ lossy_arg
      $ chaos_arg $ overload_arg $ r_slack_arg $ edge_delays_arg
      $ no_shrink_arg $ verbose_arg $ jobs_arg)

let () = exit (Cmd.eval' cmd)
