(* Second baseline: Exponential Information Gathering (EIG) Byzantine
   agreement with oral messages — the classic f+1-round algorithm in the
   lineage of Pease, Shostak & Lamport (the paper's [13], where the Byzantine
   agreement problem originates).

   Like the TPS'87 baseline it is synchronous and time-driven (lock-step
   rounds of length Phi anchored at a common t_start), and additionally pays
   an exponential message bill: each node's EIG tree holds one value per path
   of distinct node ids rooted at the General, up to depth f+1 — Theta(n^f)
   tree entries, relayed wholesale every round. It exists here to complete
   the comparison triangle of experiment E3b:

     ss-Byz-Agree   message-driven, self-stabilizing, O(d) fast path
     TPS'87         time-driven, 2 Phi fast path, polynomial messages
     EIG            time-driven, always (f+1) Phi, exponential messages

   Protocol (boundaries b counted from t_start, rounds of length Phi):
     t_start        the General sends Value(v) to all;
     boundary b, 1 <= b <= f: every node relays all tree entries with paths
       of length b that do not contain itself; a receiver stores the value
       of path p under p ++ [sender];
     boundary f+1: resolve the tree bottom-up — a leaf resolves to its
       stored value; an inner path resolves to the strict majority of its
       children's resolutions (the default value on a tie or absence) — and
       decide resolve([G]).

   EIG runs over its own payload type on a private network instance; nothing
   here touches the self-stabilizing stack. *)

open Ssba_core.Types
module Params = Ssba_core.Params
module Engine = Ssba_sim.Engine
module Clock = Ssba_sim.Clock
module Network = Ssba_net.Network

type payload =
  | Value of value  (* the General's round-0 value *)
  | Relay of (node_id list * value) list  (* (path, stored value) batch *)

let default_value = "<bot>"

type t = {
  id : node_id;
  params : Params.t;
  engine : Engine.t;
  clock : Clock.t;
  net : payload Network.t;
  g : general;
  t_start : float;
  tree : (node_id list, value) Hashtbl.t;  (* path (root first) -> value *)
  mutable decided : value option;
  mutable on_decide : value -> tau:float -> unit;
}

let local_time t = Clock.read t.clock ~now:(Engine.now t.engine)
let decided t = t.decided
let set_on_decide t f = t.on_decide <- f
let tree_size t = Hashtbl.length t.tree

(* Relay every stored path of length [len] that does not contain us. *)
let relay t ~len =
  let batch =
    Hashtbl.fold
      (fun path v acc ->
        if List.length path = len && not (List.mem t.id path) then (path, v) :: acc
        else acc)
      t.tree []
  in
  if batch <> [] then Network.broadcast t.net ~src:t.id (Relay batch)

(* Bottom-up resolution with strict majority over the children. *)
let rec resolve t ~path ~depth =
  if depth >= t.params.Params.f + 1 then
    Option.value ~default:default_value (Hashtbl.find_opt t.tree path)
  else begin
    let children =
      List.init t.params.Params.n (fun q -> q)
      |> List.filter (fun q -> not (List.mem q path))
      |> List.map (fun q -> resolve t ~path:(path @ [ q ]) ~depth:(depth + 1))
    in
    let counts = Hashtbl.create 4 in
    List.iter
      (fun v ->
        Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v)))
      children;
    let best =
      Hashtbl.fold
        (fun v c acc ->
          match acc with
          | Some (_, c') when c' >= c -> acc
          | _ -> Some (v, c))
        counts None
    in
    match best with
    | Some (v, c) when 2 * c > List.length children -> v
    | Some _ | None -> default_value
  end

let boundary t b =
  if b <= t.params.Params.f then relay t ~len:b
  else if t.decided = None then begin
    let v = resolve t ~path:[ t.g ] ~depth:1 in
    t.decided <- Some v;
    Engine.record t.engine ~node:t.id
      (Ssba_sim.Trace.Ext { kind = "eig-decide"; render = (fun () -> v) });
    t.on_decide v ~tau:(local_time t)
  end

let create ~id ~params ~clock ~engine ~net ~g ~t_start =
  let t =
    {
      id;
      params;
      engine;
      clock;
      net;
      g;
      t_start;
      tree = Hashtbl.create 64;
      decided = None;
      on_decide = (fun _ ~tau:_ -> ());
    }
  in
  Network.set_handler net id (fun env ->
      let sender = env.Ssba_net.Msg.src in
      match env.Ssba_net.Msg.payload with
      | Value v -> if sender = t.g then Hashtbl.replace t.tree [ t.g ] v
      | Relay batch ->
          List.iter
            (fun (path, v) ->
              (* Oral-messages discipline: the sender may only append itself;
                 reject paths it occurs in, over-long paths and forged roots. *)
              let len = List.length path in
              if
                len >= 1 && len <= t.params.Params.f
                && (not (List.mem sender path))
                && List.hd path = t.g
                && List.length (List.sort_uniq compare path) = len
              then Hashtbl.replace t.tree (path @ [ sender ]) v)
            batch);
  let phi = params.Params.phi in
  let tau_now = local_time t in
  for b = 1 to params.Params.f + 1 do
    let target = t_start +. (float_of_int b *. phi) in
    if target > tau_now then
      Engine.schedule_after engine
        ~delay:(Clock.real_of_local_duration clock (target -. tau_now))
        (fun () -> boundary t b)
  done;
  t

let propose t v =
  if t.id <> t.g then invalid_arg "Eig_agree.propose: not the General";
  Hashtbl.replace t.tree [ t.g ] v;
  Network.broadcast t.net ~src:t.id (Value v)
