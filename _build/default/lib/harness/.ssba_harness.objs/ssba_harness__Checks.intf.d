lib/harness/checks.mli: Format Metrics Runner Ssba_core
