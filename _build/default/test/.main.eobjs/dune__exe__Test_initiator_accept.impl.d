test/test_initiator_accept.ml: Alcotest Fake Helpers Initiator_accept List Option Params Ssba_core Ssba_sim Types
