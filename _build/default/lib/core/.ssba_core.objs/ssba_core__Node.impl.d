lib/core/node.ml: Hashtbl Initiator_accept List Params Printf Ss_byz_agree Ssba_net Ssba_sim Types
