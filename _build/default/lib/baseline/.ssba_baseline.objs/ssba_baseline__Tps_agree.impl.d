lib/baseline/tps_agree.ml: Fmt Hashtbl List Ssba_core Ssba_net Ssba_sim String
