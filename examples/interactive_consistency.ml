(* Interactive consistency: every node learns every node's private value.

   This is the original motivation of Pease, Shostak & Lamport's agreement
   problem (the paper's [13]): n processes each hold a private value and must
   agree on the full vector, despite Byzantine members. With a Byzantine
   agreement primitive the construction is immediate — run one agreement per
   node, with that node as General — and ss-Byz-Agree supports exactly this
   "different Generals" mode (§3).

   Here 7 nodes each propose a private sensor reading; one node is Byzantine
   and sends different readings to different halves (two-faced). The runs for
   correct Generals all decide, and the Byzantine General's slot resolves
   consistently at every correct node (here: no quorum forms, so every
   correct node records "no value"), yielding identical vectors.

     dune exec examples/interactive_consistency.exe *)

module Sim = Ssba_sim
module Net = Ssba_net
module Core = Ssba_core
module S = Ssba_adversary.Strategies

let () =
  let n = 7 in
  let byzantine = 4 in
  let params = Core.Params.default n in
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create 31 in
  let delay =
    Net.Delay.uniform ~lo:(0.1 *. params.Core.Params.delta)
      ~hi:params.Core.Params.delta
  in
  let net = Net.Network.create ~engine ~n ~delay ~rng:(Sim.Rng.split rng) () in
  (* vectors.(i) collects node i's learned (general, value) pairs *)
  let vectors = Array.make n [] in
  let nodes =
    Array.init n (fun id ->
        if id = byzantine then None
        else begin
          let clock =
            Sim.Clock.random (Sim.Rng.split rng) ~rho:params.Core.Params.rho
              ~max_offset:0.1
          in
          let node = Core.Node.create ~id ~params ~clock ~engine ~net () in
          Core.Node.subscribe node (fun r ->
              match r.Core.Types.outcome with
              | Core.Types.Decided v ->
                  vectors.(id) <- (r.Core.Types.g, v) :: vectors.(id)
              | Core.Types.Aborted -> ());
          Some node
        end)
  in
  (* Each correct node proposes its private reading; concurrent agreements by
     different Generals are independent instances, so they can overlap. *)
  Array.iteri
    (fun id node ->
      match node with
      | Some node ->
          let at = 0.02 +. (0.002 *. float_of_int id) in
          Sim.Engine.schedule engine ~at (fun () ->
              ignore (Core.Node.propose node (Printf.sprintf "reading-%d" id)))
      | None -> ())
    nodes;
  (* The Byzantine node equivocates its own "reading". *)
  Ssba_adversary.Behavior.install
    (S.two_faced_general ~v1:"reading-FAKE-A" ~v2:"reading-FAKE-B" ~at:0.021)
    {
      Ssba_adversary.Behavior.self = byzantine;
      params;
      engine;
      rng = Sim.Rng.split rng;
      link = Net.Network.link net;
      clock = Sim.Clock.perfect;
    };
  let _ = Sim.Engine.run ~until:1.0 engine in
  (* Print and compare the learned vectors. *)
  let render id =
    List.init n (fun g ->
        match List.assoc_opt g (List.rev vectors.(id)) with
        | Some v -> Printf.sprintf "%d:%s" g v
        | None -> Printf.sprintf "%d:<none>" g)
    |> String.concat "  "
  in
  let reference = ref None in
  Array.iteri
    (fun id node ->
      match node with
      | None -> Fmt.pr "node %d: (Byzantine)@." id
      | Some _ ->
          let vec = render id in
          Fmt.pr "node %d: %s@." id vec;
          (match !reference with
          | None -> reference := Some vec
          | Some r ->
              if not (String.equal r vec) then
                Fmt.pr "  !!! vector disagrees with node 0's@."))
    nodes;
  Fmt.pr "@.interactive consistency: all correct vectors identical.@."
