lib/core/node.mli: Params Ss_byz_agree Ssba_net Ssba_sim Types
