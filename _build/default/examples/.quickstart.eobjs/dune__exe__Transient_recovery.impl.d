examples/transient_recovery.ml: Fmt List Ssba_core Ssba_harness
