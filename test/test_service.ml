(* Tests for the recurrent-agreement service mode (DESIGN.md §12):
   workload validation and codec, admission/shedding behavior, the degraded
   -mode drain, and an SSBA_SOAK=1-gated long soak. The fuzz --overload
   tier exercises the same machinery over random specs; these pin the
   deterministic, unit-level contracts. *)

open Helpers
module P = Ssba_core.Params
module Sc = Ssba_harness.Scenario
module H = Ssba_harness
module W = Ssba_service.Workload
module Svc = Ssba_service.Service

let test_workload_validate () =
  check_bool "default workload is valid" true (W.validate W.default = Ok ());
  let bad name w =
    check_bool name true
      (match W.validate w with Ok () -> false | Error _ -> true)
  in
  bad "zero rate" { W.default with W.arrivals = W.Poisson { rate = 0.0 } };
  bad "negative burst"
    { W.default with W.arrivals = W.Bursty { rate = 1.0; burst = -1; every = 0.5 } };
  bad "start after stop" { W.default with W.start_at = 2.0; stop_at = 1.0 };
  bad "zero channels" { W.default with W.channels = 0 };
  bad "watermark above 1" { W.default with W.high_watermark = 1.5 };
  bad "low above high" { W.default with W.low_watermark = 0.9; high_watermark = 0.5 };
  bad "no attempts" { W.default with W.retry_max = 0 };
  bad "negative queue" { W.default with W.queue_cap = -1 }

let test_workload_json_roundtrip () =
  let roundtrip name w =
    match W.of_json (W.to_json w) with
    | Ok w' -> check_bool name true (w = w')
    | Error e -> Alcotest.failf "%s: %s" name e
  in
  roundtrip "default" W.default;
  roundtrip "poisson"
    { W.default with W.arrivals = W.Poisson { rate = 12.5 }; channels = 4 };
  roundtrip "bursty"
    {
      W.default with
      W.arrivals = W.Bursty { rate = 3.0; burst = 17; every = 0.25 };
      queue_cap = 5;
      high_watermark = 0.75;
      low_watermark = 0.25;
      retry_max = 7;
      retry_base = 0.004;
      pulse_cycles = 12;
    };
  check_bool "garbage refused" true
    (match W.of_json (Ssba_sim.Json.Str "nope") with
    | Error _ -> true
    | Ok _ -> false)

let test_service_values () =
  check_bool "service value recognized" true (Svc.is_service_value "svc-3-a1");
  check_bool "plain value not service" false (Svc.is_service_value "epoch-3");
  check_bool "pulse value not service" false (Svc.is_service_value "pulse-7")

let scenario ~name ~seed ~params (w : W.t) =
  Sc.default ~name ~seed
    ~horizon:(w.W.stop_at +. (1.5 *. params.P.delta_stb))
    ~channels:w.W.channels ~admission:true params

let test_calm_service_sheds_nothing () =
  (* Under-watermark load: every arrival admitted, every job decided, no
     shedding, no degraded mode, latencies inside the agreement bound. *)
  let n = 4 in
  let params = P.default n in
  let w =
    {
      W.default with
      W.arrivals = W.Poisson { rate = 20.0 };
      start_at = 0.05;
      stop_at = 3.0;
      channels = 4;
      retry_base = 4.0 *. params.P.d;
    }
  in
  let _res, r = Svc.run ~seed:31 w (scenario ~name:"svc-calm" ~seed:31 ~params w) in
  check_bool "jobs arrived" true (r.Svc.arrivals > 20);
  check_int "all admitted" r.Svc.arrivals r.Svc.admitted;
  check_int "all decided" r.Svc.admitted r.Svc.decided;
  check_int "nothing shed below the watermark" 0 r.Svc.shed;
  check_int "no timeouts" 0 r.Svc.timed_out;
  check_int "no degraded episodes" 0 (List.length r.Svc.degraded_episodes);
  check_bool "p99 within Delta_agr" true (r.Svc.p99_latency <= params.P.delta_agr)

let test_overloaded_service_sheds_and_drains () =
  (* Starved watermarks under bursts: shedding and degraded episodes must
     occur, every class of shed is accounted, the retry queue respects its
     bound, and every degraded episode closes before the horizon. *)
  let n = 4 in
  let params = P.default n in
  let w =
    {
      W.default with
      W.arrivals = W.Bursty { rate = 30.0; burst = 30; every = 0.4 };
      start_at = 0.05;
      stop_at = 4.0;
      channels = 4;
      queue_cap = 6;
      high_watermark = 0.3;
      low_watermark = 0.15;
      retry_base = 4.0 *. params.P.d;
    }
  in
  let _res, r = Svc.run ~seed:37 w (scenario ~name:"svc-over" ~seed:37 ~params w) in
  check_bool "shedding occurred" true (r.Svc.shed > 0);
  check_int "shed classes sum" r.Svc.shed
    (r.Svc.shed_degraded + r.Svc.shed_watermark + r.Svc.shed_queue_full);
  check_bool "degraded mode engaged" true (r.Svc.degraded_episodes <> []);
  check_int "every degraded episode closed" 0 r.Svc.unresolved_degraded;
  check_bool "recovery within Delta_stb" true
    (r.Svc.max_degraded_span <= params.P.delta_stb);
  check_bool "retry queue bounded" true (r.Svc.peak_queue <= w.W.queue_cap);
  check_bool "admitted jobs still decide under pressure" true
    (r.Svc.decided > 0)

(* Long-haul service soak, env-scaled like the other soaks: gated behind
   SSBA_SOAK=1 so tier-1 stays fast; SSBA_SOAK_SERVICE_SECS stretches the
   arrival window (default 30 s — roughly 2,200 sessions and 450 pulses). *)
let test_service_soak () =
  match Sys.getenv_opt "SSBA_SOAK" with
  | Some "1" ->
      let secs =
        match Sys.getenv_opt "SSBA_SOAK_SERVICE_SECS" with
        | Some s -> (
            match float_of_string_opt s with
            | Some x when x > 0.0 -> x
            | _ -> 30.0)
        | _ -> 30.0
      in
      let n = 4 in
      let params = P.default n in
      let w =
        {
          W.default with
          W.arrivals = W.Poisson { rate = 75.0 };
          start_at = 0.05;
          stop_at = 0.05 +. secs;
          channels = 8;
          retry_base = 4.0 *. params.P.d;
          pulse_cycles = max 1 (int_of_float (secs /. 0.07));
        }
      in
      let _res, r =
        Svc.run ~seed:41 w (scenario ~name:"svc-soak" ~seed:41 ~params w)
      in
      Fmt.epr
        "service soak: %g s — admitted %d decided %d shed %d pulses %d skew \
         %.2fd@."
        secs r.Svc.admitted r.Svc.decided r.Svc.shed r.Svc.pulses
        (r.Svc.pulse_skew /. params.P.d);
      check_bool "soak admitted plenty" true
        (float_of_int r.Svc.admitted >= 60.0 *. secs);
      check_int "soak decided everything admitted" r.Svc.admitted r.Svc.decided;
      check_int "soak: no timeouts" 0 r.Svc.timed_out;
      check_int "soak: no exhausted retries" 0 r.Svc.gave_up;
      check_bool "soak: pulse layer cycled" true (r.Svc.pulses > 0);
      check_bool "soak: pulse skew within 3d" true
        (r.Svc.pulse_skew <= 3.0 *. params.P.d)
  | _ -> Fmt.epr "service soak skipped (set SSBA_SOAK=1 to enable)@."

let suite =
  [
    case "workload validation" test_workload_validate;
    case "workload JSON round-trip" test_workload_json_roundtrip;
    case "service value namespace" test_service_values;
    slow_case "calm service sheds nothing" test_calm_service_sheds_nothing;
    slow_case "overloaded service sheds and drains" test_overloaded_service_sheds_and_drains;
    slow_case "service soak (SSBA_SOAK=1)" test_service_soak;
  ]
