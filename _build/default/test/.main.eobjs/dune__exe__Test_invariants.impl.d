test/test_invariants.ml: Alcotest Helpers List Params QCheck Ss_byz_agree Ssba_adversary Ssba_core Ssba_harness String
