lib/adversary/behavior.ml: List Ssba_core Ssba_net Ssba_sim
