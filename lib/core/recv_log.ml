(* Timestamped per-sender receive log.

   Each Initiator-Accept / msgd-broadcast message class keeps one log per
   (General, value[, round]) key. The primitives only ever ask questions of
   the form "did >= k distinct senders deliver this message within the local
   window [tau - alpha, tau]?", so it suffices to remember, per sender, the
   most recent arrival time: re-sends refresh the entry, and older arrivals
   can never enlarge a suffix window's sender count.

   Window queries run on every arrival, so they are the broadcast hot path.
   The log is a sorted array of (time, sender) pairs — parallel flat
   float/int arrays, ascending by (time, sender) — so every query is a
   binary search: O(log m), monomorphic comparisons, no allocation. Each
   sender appears at most once, so the sender -> latest-arrival lookup is a
   linear scan of the int column (m <= n entries, allocation-free) — it
   replaced a side Hashtbl whose [note] allocated an option and a bucket per
   arrival on the hottest path in the simulator. Updates (a refresh moves
   one entry towards the end; decay cuts a prefix, sanitize a suffix) are a
   scan plus one [Array.blit] over at most m entries.

   The log also implements the paper's decay rules: entries older than a
   horizon are removed, and entries with "clearly wrong" (future) timestamps
   — which only a transient fault can produce — are dropped by [sanitize]. *)

type t = {
  mutable times : float array;  (* ascending by (time, sender); size live *)
  mutable who : int array;
  mutable size : int;
}

let create () = { times = Array.make 8 0.0; who = Array.make 8 0; size = 0 }

(* Index of [sender]'s (unique) entry, or -1. *)
let find_sender t sender =
  let n = t.size in
  let who = t.who in
  let rec go i =
    if i >= n then -1 else if Array.unsafe_get who i = sender then i else go (i + 1)
  in
  go 0

(* First index whose (time, sender) is >= (at, sender) lexicographically. *)
let lower_bound t ~at ~sender =
  let lo = ref 0 and hi = ref t.size in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let mt = Array.unsafe_get t.times mid in
    if mt < at || (mt = at && Array.unsafe_get t.who mid < sender) then
      lo := mid + 1
    else hi := mid
  done;
  !lo

(* First index with time >= x. *)
let lower_bound_time t x =
  let lo = ref 0 and hi = ref t.size in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Array.unsafe_get t.times mid < x then lo := mid + 1 else hi := mid
  done;
  !lo

(* First index with time > x. *)
let upper_bound_time t x =
  let lo = ref 0 and hi = ref t.size in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Array.unsafe_get t.times mid <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let remove_at t i =
  Array.blit t.times (i + 1) t.times i (t.size - i - 1);
  Array.blit t.who (i + 1) t.who i (t.size - i - 1);
  t.size <- t.size - 1

let insert_entry t ~at ~sender =
  if t.size = Array.length t.times then begin
    let cap = 2 * t.size in
    let times = Array.make cap 0.0 and who = Array.make cap 0 in
    Array.blit t.times 0 times 0 t.size;
    Array.blit t.who 0 who 0 t.size;
    t.times <- times;
    t.who <- who
  end;
  let i = lower_bound t ~at ~sender in
  Array.blit t.times i t.times (i + 1) (t.size - i);
  Array.blit t.who i t.who (i + 1) (t.size - i);
  t.times.(i) <- at;
  t.who.(i) <- sender;
  t.size <- t.size + 1

let replace t ~sender ~at =
  (match find_sender t sender with i when i >= 0 -> remove_at t i | _ -> ());
  insert_entry t ~at ~sender

let note t ~sender ~at =
  match find_sender t sender with
  | i when i >= 0 ->
      if Array.unsafe_get t.times i < at then begin
        remove_at t i;
        insert_entry t ~at ~sender
      end
  | _ -> insert_entry t ~at ~sender

let count t = t.size

let mem t ~sender = find_sender t sender >= 0

let senders t =
  let rec collect i acc =
    if i < 0 then acc else collect (i - 1) (t.who.(i) :: acc)
  in
  List.sort_uniq Int.compare (collect (t.size - 1) [])

(* Senders whose latest arrival lies in [now - width, now]. *)
let count_in_window t ~now ~width =
  let hi = upper_bound_time t now in
  let lo = lower_bound_time t (now -. width) in
  if hi > lo then hi - lo else 0

(* Smallest alpha such that >= count distinct senders arrived in
   [now - alpha, now]; [None] if fewer than [count] arrivals exist at all. *)
let shortest_window t ~now ~count =
  if count <= 0 then Some 0.0
  else begin
    let hi = upper_bound_time t now in
    if hi < count then None else Some (now -. t.times.(hi - count))
  end

let latest t = if t.size = 0 then None else Some t.times.(t.size - 1)

(* Drop entries that arrived before [horizon] — an ascending-order prefix. *)
let decay t ~horizon =
  let cut = lower_bound_time t horizon in
  if cut > 0 then begin
    Array.blit t.times cut t.times 0 (t.size - cut);
    Array.blit t.who cut t.who 0 (t.size - cut);
    t.size <- t.size - cut
  end

(* Drop entries with impossible (future) timestamps — transient-fault
   residue, a suffix of the sorted array. *)
let sanitize t ~now =
  let keep = upper_bound_time t now in
  if keep < t.size then t.size <- keep

(* Iterate live entries in ascending (time, sender) order — a canonical
   order independent of arrival interleaving; the model checker's state
   fingerprints rely on it. *)
let iter_entries t f =
  for i = 0 to t.size - 1 do
    f ~sender:t.who.(i) ~at:t.times.(i)
  done

let clear t = t.size <- 0

let is_empty t = t.size = 0

(* Fault injection: plant an arbitrary entry, bypassing the monotonicity of
   [note]. Used only by the transient-fault scrambler. *)
let corrupt t ~sender ~at = replace t ~sender ~at
