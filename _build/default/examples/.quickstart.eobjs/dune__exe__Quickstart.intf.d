examples/quickstart.mli:
