lib/sim/rng.mli:
